#include "gps/roads.hpp"

#include <algorithm>
#include <cmath>

#include "inference/generic_reweight.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace gps {

RoadNetwork::RoadNetwork(std::vector<RoadSegment> segments)
    : segments_(std::move(segments))
{
    UNCERTAIN_REQUIRE(!segments_.empty(),
                      "RoadNetwork requires >= 1 segment");
}

double
RoadNetwork::distanceToNearestRoad(const GeoCoordinate& point) const
{
    double best = std::numeric_limits<double>::infinity();
    for (const RoadSegment& segment : segments_) {
        // Work in the local tangent plane of the segment start.
        EnuOffset end = localOffsetMeters(segment.from, segment.to);
        EnuOffset p = localOffsetMeters(segment.from, point);
        double len2 = end.east * end.east + end.north * end.north;
        double t = len2 == 0.0
                       ? 0.0
                       : std::clamp((p.east * end.east
                                     + p.north * end.north)
                                        / len2,
                                    0.0, 1.0);
        double dx = p.east - t * end.east;
        double dy = p.north - t * end.north;
        best = std::min(best, std::hypot(dx, dy));
    }
    return best;
}

RoadNetwork
RoadNetwork::grid(const GeoCoordinate& center, double spacingMeters,
                  std::size_t lines)
{
    UNCERTAIN_REQUIRE(spacingMeters > 0.0,
                      "grid spacing must be positive");
    UNCERTAIN_REQUIRE(lines >= 1, "grid requires >= 1 line");

    std::vector<RoadSegment> segments;
    double half = spacingMeters * static_cast<double>(lines - 1) / 2.0;
    double extent = half + spacingMeters;
    for (std::size_t i = 0; i < lines; ++i) {
        double offset = -half + spacingMeters * static_cast<double>(i);
        // North-south street at east-offset `offset`.
        GeoCoordinate south = destination(
            destination(center, M_PI / 2.0, offset), M_PI, extent);
        GeoCoordinate north = destination(
            destination(center, M_PI / 2.0, offset), 0.0, extent);
        segments.push_back({south, north});
        // East-west street at north-offset `offset`.
        GeoCoordinate west = destination(
            destination(center, 0.0, offset), 1.5 * M_PI, extent);
        GeoCoordinate east = destination(
            destination(center, 0.0, offset), 0.5 * M_PI, extent);
        segments.push_back({west, east});
    }
    return RoadNetwork(std::move(segments));
}

RoadPrior::RoadPrior(RoadNetwork network, double corridorSigma,
                     double offRoadWeight)
    : network_(std::move(network)), corridorSigma_(corridorSigma),
      offRoadWeight_(offRoadWeight)
{
    UNCERTAIN_REQUIRE(corridorSigma > 0.0,
                      "RoadPrior corridor sigma must be positive");
    UNCERTAIN_REQUIRE(offRoadWeight > 0.0 && offRoadWeight < 1.0,
                      "RoadPrior off-road weight must be in (0, 1)");
}

double
RoadPrior::logDensity(const GeoCoordinate& point) const
{
    double d = network_.distanceToNearestRoad(point);
    double z = d / corridorSigma_;
    // Smooth maximum of the corridor Gaussian and the uniform floor.
    return std::log(std::exp(-0.5 * z * z) + offRoadWeight_);
}

Uncertain<GeoCoordinate>
snapToRoads(const Uncertain<GeoCoordinate>& location,
            const RoadPrior& prior,
            const inference::ReweightOptions& options, Rng& rng)
{
    return inference::reweightSamples(
               location,
               [&prior](const GeoCoordinate& p) {
                   return prior.logDensity(p);
               },
               options, rng)
        .posterior;
}

Uncertain<GeoCoordinate>
snapToRoads(const Uncertain<GeoCoordinate>& location,
            const RoadPrior& prior,
            const inference::ReweightOptions& options)
{
    return snapToRoads(location, prior, options, globalRng());
}

} // namespace gps
} // namespace uncertain
