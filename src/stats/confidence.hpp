/**
 * @file
 * Confidence intervals for means and proportions, used both by the
 * expected-value evaluation operator and by the figure harnesses to
 * print the paper's "means and 95% confidence intervals".
 */

#ifndef UNCERTAIN_STATS_CONFIDENCE_HPP
#define UNCERTAIN_STATS_CONFIDENCE_HPP

#include <cstddef>
#include <vector>

#include "stats/summary.hpp"

namespace uncertain {
namespace stats {

/** A two-sided interval [lo, hi]. */
struct Interval
{
    double lo;
    double hi;

    double width() const { return hi - lo; }
    double center() const { return 0.5 * (lo + hi); }
    bool contains(double x) const { return x >= lo && x <= hi; }
};

/**
 * Student-t confidence interval for the mean of @p summary at the
 * given confidence level. Requires >= 2 observations.
 */
Interval meanConfidenceInterval(const OnlineSummary& summary,
                                double confidence = 0.95);

/** Convenience overload over a raw sample. */
Interval meanConfidenceInterval(const std::vector<double>& xs,
                                double confidence = 0.95);

/**
 * Wilson score interval for a Bernoulli proportion with @p successes
 * out of @p trials. Requires trials >= 1. Well-behaved for extreme
 * p-hat, unlike the Wald interval.
 */
Interval proportionConfidenceInterval(std::size_t successes,
                                      std::size_t trials,
                                      double confidence = 0.95);

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_CONFIDENCE_HPP
