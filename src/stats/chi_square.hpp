/**
 * @file
 * Chi-square goodness-of-fit test for discrete distributions.
 */

#ifndef UNCERTAIN_STATS_CHI_SQUARE_HPP
#define UNCERTAIN_STATS_CHI_SQUARE_HPP

#include <cstddef>
#include <vector>

namespace uncertain {
namespace stats {

/** Result of a chi-square test. */
struct ChiSquareResult
{
    double statistic;
    double degreesOfFreedom;
    double pValue;

    bool rejectAt(double alpha) const { return pValue < alpha; }
};

/**
 * Pearson chi-square goodness-of-fit: @p observed counts against
 * @p expected probabilities (normalized internally). Requires equal
 * non-zero lengths and positive expected mass in every cell.
 * @param constraintsFitted extra degrees of freedom consumed by
 *        parameters estimated from the data.
 */
ChiSquareResult chiSquareGof(const std::vector<std::size_t>& observed,
                             const std::vector<double>& expected,
                             std::size_t constraintsFitted = 0);

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_CHI_SQUARE_HPP
