/**
 * @file
 * Chi-square goodness-of-fit test for discrete distributions.
 */

#ifndef UNCERTAIN_STATS_CHI_SQUARE_HPP
#define UNCERTAIN_STATS_CHI_SQUARE_HPP

#include <cstddef>
#include <vector>

namespace uncertain {
namespace stats {

/** Result of a chi-square test. */
struct ChiSquareResult
{
    double statistic;
    double degreesOfFreedom;
    double pValue;

    bool rejectAt(double alpha) const { return pValue < alpha; }
};

/**
 * Pearson chi-square goodness-of-fit: @p observed counts against
 * @p expected probabilities (normalized internally). Requires equal
 * non-zero lengths and positive expected mass in every cell.
 * @param constraintsFitted extra degrees of freedom consumed by
 *        parameters estimated from the data.
 */
ChiSquareResult chiSquareGof(const std::vector<std::size_t>& observed,
                             const std::vector<double>& expected,
                             std::size_t constraintsFitted = 0);

/**
 * Pool adjacent sparse cells, then run chiSquareGof on the pooled
 * histogram. The chi-square statistic's asymptotic distribution
 * assumes every cell's expected count is adequate (the classical rule
 * of thumb: >= 5); a sparse tail — a Poisson's far right cells, a
 * binomial's extreme k — violates that and produces spurious
 * rejections. Pooling rule: cells are taken in the given (support)
 * order and merged left to right until each pooled group's expected
 * count reaches @p minExpectedCount; a trailing group below the
 * floor is merged into its left neighbor. Cells with zero expected
 * mass are absorbed the same way. Requires the pooled histogram to
 * keep at least constraintsFitted + 2 groups.
 */
ChiSquareResult
chiSquareGofPooled(const std::vector<std::size_t>& observed,
                   const std::vector<double>& expected,
                   double minExpectedCount = 5.0,
                   std::size_t constraintsFitted = 0);

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_CHI_SQUARE_HPP
