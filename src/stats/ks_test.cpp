#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace uncertain {
namespace stats {

double
kolmogorovSurvival(double lambda)
{
    if (lambda <= 0.0)
        return 1.0;
    double sum = 0.0;
    double sign = 1.0;
    for (int j = 1; j <= 100; ++j) {
        double term = std::exp(-2.0 * j * j * lambda * lambda);
        sum += sign * term;
        if (term < 1e-12)
            break;
        sign = -sign;
    }
    return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult
ksTest(std::vector<double> xs, const random::Distribution& reference)
{
    UNCERTAIN_REQUIRE(!xs.empty(), "ksTest requires a non-empty sample");
    std::sort(xs.begin(), xs.end());
    double n = static_cast<double>(xs.size());
    double d = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double f = reference.cdf(xs[i]);
        double lo = static_cast<double>(i) / n;
        double hi = static_cast<double>(i + 1) / n;
        d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
    }
    double sqrtN = std::sqrt(n);
    double lambda = (sqrtN + 0.12 + 0.11 / sqrtN) * d;
    return {d, kolmogorovSurvival(lambda)};
}

KsResult
ksTest2(std::vector<double> xs, std::vector<double> ys)
{
    UNCERTAIN_REQUIRE(!xs.empty() && !ys.empty(),
                      "ksTest2 requires non-empty samples");
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
    double n1 = static_cast<double>(xs.size());
    double n2 = static_cast<double>(ys.size());

    double d = 0.0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < xs.size() && j < ys.size()) {
        double x = xs[i];
        double y = ys[j];
        if (x <= y)
            ++i;
        if (y <= x)
            ++j;
        double f1 = static_cast<double>(i) / n1;
        double f2 = static_cast<double>(j) / n2;
        d = std::max(d, std::fabs(f1 - f2));
    }

    double ne = std::sqrt(n1 * n2 / (n1 + n2));
    double lambda = (ne + 0.12 + 0.11 / ne) * d;
    return {d, kolmogorovSurvival(lambda)};
}

} // namespace stats
} // namespace uncertain
