#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace uncertain {
namespace stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    UNCERTAIN_REQUIRE(lo < hi, "Histogram requires lo < hi");
    UNCERTAIN_REQUIRE(bins >= 1, "Histogram requires >= 1 bin");
}

Histogram
Histogram::fromSamples(const std::vector<double>& xs, std::size_t bins)
{
    UNCERTAIN_REQUIRE(!xs.empty(), "Histogram::fromSamples: empty sample");
    auto [mnIt, mxIt] = std::minmax_element(xs.begin(), xs.end());
    double lo = *mnIt;
    double hi = *mxIt;
    if (lo == hi) {
        lo -= 0.5;
        hi += 0.5;
    }
    // Widen slightly so the max lands inside the last bin.
    double pad = (hi - lo) * 1e-9;
    Histogram h(lo, hi + pad, bins);
    h.addAll(xs);
    return h;
}

void
Histogram::add(double x)
{
    double scaled = (x - lo_) / (hi_ - lo_)
                    * static_cast<double>(counts_.size());
    auto bin = static_cast<std::ptrdiff_t>(std::floor(scaled));
    bin = std::clamp<std::ptrdiff_t>(
        bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

void
Histogram::addAll(const std::vector<double>& xs)
{
    for (double x : xs)
        add(x);
}

std::size_t
Histogram::countAt(std::size_t bin) const
{
    UNCERTAIN_REQUIRE(bin < counts_.size(), "Histogram bin out of range");
    return counts_[bin];
}

double
Histogram::binCenter(std::size_t bin) const
{
    UNCERTAIN_REQUIRE(bin < counts_.size(), "Histogram bin out of range");
    double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * (static_cast<double>(bin) + 0.5);
}

double
Histogram::density(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(countAt(bin))
           / static_cast<double>(total_);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 0;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    std::ostringstream out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        auto bar = peak == 0
                       ? std::size_t{0}
                       : counts_[i] * width / peak;
        out << std::setw(10) << std::fixed << std::setprecision(3)
            << binCenter(i) << " | " << std::string(bar, '#') << " "
            << counts_[i] << "\n";
    }
    return out.str();
}

} // namespace stats
} // namespace uncertain
