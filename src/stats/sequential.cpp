#include "stats/sequential.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace stats {

namespace {

// Pocock constant boundaries (two-sided) for K = 1..10 looks.
constexpr double kPocock05[10] = {
    1.960, 2.178, 2.289, 2.361, 2.413,
    2.453, 2.485, 2.512, 2.535, 2.555,
};
constexpr double kPocock01[10] = {
    2.576, 2.772, 2.873, 2.939, 2.986,
    3.023, 3.053, 3.078, 3.099, 3.117,
};

} // namespace

GroupSequentialTest::GroupSequentialTest(double threshold,
                                         std::size_t looks,
                                         std::size_t totalSamples,
                                         double alpha)
    : threshold_(threshold), looks_(looks), totalSamples_(totalSamples)
{
    UNCERTAIN_REQUIRE(threshold > 0.0 && threshold < 1.0,
                      "group sequential threshold must be in (0, 1)");
    UNCERTAIN_REQUIRE(looks >= 1 && looks <= 10,
                      "group sequential supports 1..10 looks");
    UNCERTAIN_REQUIRE(totalSamples >= looks,
                      "totalSamples must be >= looks");
    if (alpha == 0.05) {
        boundary_ = kPocock05[looks - 1];
    } else if (alpha == 0.01) {
        boundary_ = kPocock01[looks - 1];
    } else {
        throw Error("GroupSequentialTest supports alpha 0.05 or 0.01");
    }
    perLook_ = totalSamples_ / looks_;
}

TestDecision
GroupSequentialTest::add(bool success)
{
    if (decision_ != TestDecision::Inconclusive
        || samples_ >= totalSamples_) {
        return decision_;
    }

    ++samples_;
    if (success)
        ++successes_;

    bool atLook = (samples_ % perLook_ == 0)
                  && (samples_ / perLook_ > looksTaken_);
    bool exhausted = samples_ >= totalSamples_;
    if (atLook || exhausted) {
        ++looksTaken_;
        evaluateLook();
    }
    return decision_;
}

TestDecision
GroupSequentialTest::addMany(const std::uint8_t* observations,
                             std::size_t count)
{
    for (std::size_t i = 0;
         i < count && decision_ == TestDecision::Inconclusive; ++i) {
        add(observations[i] != 0);
    }
    return decision_;
}

void
GroupSequentialTest::evaluateLook()
{
    double n = static_cast<double>(samples_);
    double pHat = static_cast<double>(successes_) / n;
    double se = std::sqrt(threshold_ * (1.0 - threshold_) / n);
    double z = (pHat - threshold_) / se;
    if (z >= boundary_)
        decision_ = TestDecision::AcceptAlternative;
    else if (z <= -boundary_)
        decision_ = TestDecision::AcceptNull;
    // Otherwise continue to the next look; Inconclusive after the
    // final look means "within the indifference band".
}

double
GroupSequentialTest::estimate() const
{
    UNCERTAIN_REQUIRE(samples_ >= 1,
                      "group sequential estimate requires observations");
    return static_cast<double>(successes_)
           / static_cast<double>(samples_);
}

double
criticalZ(double confidence)
{
    UNCERTAIN_REQUIRE(confidence > 0.0 && confidence < 1.0,
                      "confidence must be in (0, 1)");
    return math::normalQuantile(0.5 * (1.0 + confidence));
}

} // namespace stats
} // namespace uncertain
