/**
 * @file
 * Bootstrap confidence intervals for arbitrary statistics of a
 * sample: quantiles, error rates, anything the t-interval of
 * stats/confidence.hpp does not cover.
 */

#ifndef UNCERTAIN_STATS_BOOTSTRAP_HPP
#define UNCERTAIN_STATS_BOOTSTRAP_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "stats/confidence.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace stats {

/** Tuning for the bootstrap. */
struct BootstrapOptions
{
    std::size_t resamples = 1000;
    double confidence = 0.95;
};

/** A bootstrap estimate with its percentile interval. */
struct BootstrapResult
{
    double estimate; //!< statistic on the original sample
    Interval interval;
};

/**
 * Percentile-bootstrap interval for
 * @p statistic(sample) over @p sample. Requires a non-empty sample
 * and >= 10 resamples.
 */
BootstrapResult
bootstrap(const std::vector<double>& sample,
          const std::function<double(const std::vector<double>&)>&
              statistic,
          const BootstrapOptions& options, Rng& rng);

/** bootstrap() with the thread's global generator. */
BootstrapResult
bootstrap(const std::vector<double>& sample,
          const std::function<double(const std::vector<double>&)>&
              statistic,
          const BootstrapOptions& options = {});

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_BOOTSTRAP_HPP
