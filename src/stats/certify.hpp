/**
 * @file
 * Statistical-distance certification of bulk samplers.
 *
 * Per-test KS checks at a fixed alpha answer "did this one run look
 * wrong?" — a weak guarantee that can miss substantially wrong
 * samplers (Sarkar, Chakraborty & Meel, "Assessing the Quality of
 * Binomial Samplers: A Statistical Distance Framework", CAV 2025).
 * This module adopts the statistical-distance view: estimate the
 * total-variation distance between a sampler's output law and its
 * ground truth over a finite partition of the support, and report an
 * explicit (epsilon, delta) guarantee at a chosen sample count.
 *
 * The estimator is the plug-in TV over K cells,
 *
 *     tvEstimate = 1/2 * sum_k | n_k / N  -  q_k |,
 *
 * where q is the ground-truth cell law (equiprobable quantile cells
 * through the closed-form CDF for continuous laws; explicit pmf
 * cells, e.g. from the src/exact enumeration oracle, for
 * finite-support laws). Two concentration facts turn the estimate
 * into a certificate, both holding for EVERY sampler law p (not just
 * the null):
 *
 *  - bias:      E ||phat - p||_1 <= sum_k sqrt(p_k (1-p_k) / N)
 *               <= sqrt(K / N)   (Cauchy-Schwarz),
 *  - deviation: ||phat - p||_1 is (2/N)-bounded-differences, so by
 *               McDiarmid P(||phat - p||_1 >= E + t) <= exp(-N t^2/2),
 *               i.e. t(delta) = sqrt(2 ln(1/delta) / N).
 *
 * With probability >= 1 - delta:
 *
 *  - a law-identical sampler satisfies
 *        tvEstimate <= threshold
 *                    = 1/2 (sum_k sqrt(q_k (1-q_k)/N) + t(delta)),
 *    so "pass" has false-rejection probability <= delta;
 *  - for any sampler, the partition TV obeys
 *        TV_K(p, q) <= tvUpperBound = tvEstimate + epsilon,
 *        epsilon    = 1/2 (sqrt(K/N) + t(delta)),
 *    and any sampler with TV_K(p, q) > threshold + epsilon is
 *    rejected with probability >= 1 - delta.
 *
 * TV_K is the distance after coarsening to the K cells; coarsening
 * never increases TV, so tvUpperBound bounds the resolution-K view
 * of the discrepancy, and the harness's power grows with K and N.
 * At the nightly configuration (N >= 1e7, K = 1024, delta = 1e-9)
 * the distinguishability radius threshold + epsilon is ~1.2e-2 —
 * far below what an alpha = 0.01 KS test at suite sample counts can
 * resolve for localized density errors, which is precisely the class
 * of defect (one wrong ziggurat layer, a mis-weighted wedge) KS
 * misses.
 */

#ifndef UNCERTAIN_STATS_CERTIFY_HPP
#define UNCERTAIN_STATS_CERTIFY_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "random/distribution.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace stats {

/**
 * A bulk sampling function: fill out[0..n) with independent draws.
 * Adapts every path the harness certifies — Distribution::sampleMany,
 * scalar sample() loops, batch-engine columns, resampler pools.
 */
using BulkSampler =
    std::function<void(Rng& rng, double* out, std::size_t n)>;

/** Wrap a scalar sampler as a BulkSampler. */
BulkSampler scalarSampler(random::DistributionPtr dist);

/** Wrap a distribution's bulk path as a BulkSampler. */
BulkSampler bulkSampler(random::DistributionPtr dist);

/** Tuning for one certification run. */
struct CertifyOptions
{
    /**
     * Draws N. The CTest shard runs at a CI-friendly default; the
     * nightly configuration raises this to >= 1e7 where the
     * distinguishability radius drops to ~1e-2.
     */
    std::size_t samples = 1u << 21;
    /**
     * Partition size K for continuous laws (equiprobable cells in
     * CDF space). Discrete laws take their cell structure from the
     * support instead.
     */
    std::size_t cells = 512;
    /** Certificate confidence 1 - delta. */
    double delta = 1e-6;
    /** Draw-buffer block size (amortizes the BulkSampler call). */
    std::size_t blockSize = 1u << 16;
};

/** One sampler's certificate. */
struct CertifyResult
{
    std::string sampler;      //!< display name
    std::size_t samples = 0;  //!< N
    std::size_t cells = 0;    //!< K (after any discrete out-cell)
    double delta = 0.0;       //!< 1 - confidence
    double tvEstimate = 0.0;  //!< plug-in TV over the partition
    /**
     * Acceptance bar for a law-identical sampler: null bias plus the
     * McDiarmid deviation at delta, halved. pass == (tvEstimate <=
     * threshold); a true sampler fails with probability <= delta.
     */
    double threshold = 0.0;
    /**
     * Universal half-width: with probability >= 1 - delta the
     * partition TV lies within epsilon of tvEstimate for ANY sampler
     * law.
     */
    double epsilon = 0.0;
    /** tvEstimate + epsilon: certified bound on the partition TV. */
    double tvUpperBound = 0.0;
    bool pass = false;
    double seconds = 0.0;          //!< wall time spent drawing
    double samplesPerSecond = 0.0; //!< draw throughput
};

/**
 * Certify @p sample against a continuous ground truth @p truth via
 * the probability-integral transform: x lands in cell
 * floor(truth.cdf(x) * K), so every cell has exact expected mass
 * 1/K. Requires truth.cdf(); @p rng seeds the run (fixed seed =
 * reproducible certificate).
 */
CertifyResult certifyContinuous(const std::string& name,
                                const BulkSampler& sample,
                                const random::Distribution& truth,
                                Rng& rng,
                                const CertifyOptions& options = {});

/**
 * Certify @p sample against an explicit finite-support ground truth
 * (e.g. a pmf computed by the src/exact enumeration oracle). Each
 * support value is one cell; draws matching no support value
 * bit-for-bit land in a zero-mass overflow cell that contributes its
 * full frequency to the distance. @p probabilities must sum to ~1.
 */
CertifyResult certifyDiscrete(const std::string& name,
                              const BulkSampler& sample,
                              const std::vector<double>& values,
                              const std::vector<double>& probabilities,
                              Rng& rng,
                              const CertifyOptions& options = {});

/**
 * Certificate from precomputed cell counts: @p observed draws per
 * cell against ground-truth cell masses @p expected (must sum to
 * ~1; zero-mass cells allowed). The core of both entry points,
 * exposed for tests and for callers that already hold a histogram.
 * Throughput fields are left zero.
 */
CertifyResult certifyFromCounts(const std::string& name,
                                const std::vector<std::uint64_t>& observed,
                                const std::vector<double>& expected,
                                double delta);

/** Serialize results as the BENCH_certification.json document. */
std::string certificationJson(const std::vector<CertifyResult>& results);

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_CERTIFY_HPP
