/**
 * @file
 * Fixed-bin histogram with ASCII rendering, used by the bench harness
 * to print distribution shapes (Figures 1, 6, 11, 15).
 */

#ifndef UNCERTAIN_STATS_HISTOGRAM_HPP
#define UNCERTAIN_STATS_HISTOGRAM_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace uncertain {
namespace stats {

/** Equal-width bins over [lo, hi); out-of-range values are clamped. */
class Histogram
{
  public:
    /** Requires lo < hi and bins >= 1. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Convenience: bins spanning the sample range, then fill. */
    static Histogram fromSamples(const std::vector<double>& xs,
                                 std::size_t bins);

    void add(double x);
    void addAll(const std::vector<double>& xs);

    std::size_t binCount() const { return counts_.size(); }
    std::size_t totalCount() const { return total_; }
    std::size_t countAt(std::size_t bin) const;
    /** Center of bin @p bin. */
    double binCenter(std::size_t bin) const;
    /** Fraction of mass in bin @p bin. */
    double density(std::size_t bin) const;

    /**
     * Render as rows of "center | ####### count". @p width scales the
     * longest bar.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_HISTOGRAM_HPP
