#include "stats/chi_square.hpp"

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace stats {

ChiSquareResult
chiSquareGof(const std::vector<std::size_t>& observed,
             const std::vector<double>& expected,
             std::size_t constraintsFitted)
{
    UNCERTAIN_REQUIRE(!observed.empty(), "chiSquareGof: empty input");
    UNCERTAIN_REQUIRE(observed.size() == expected.size(),
                      "chiSquareGof: size mismatch");
    UNCERTAIN_REQUIRE(observed.size() > constraintsFitted + 1,
                      "chiSquareGof: not enough cells for the "
                      "requested constraints");

    double totalExpected = 0.0;
    std::size_t totalObserved = 0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        UNCERTAIN_REQUIRE(expected[i] > 0.0,
                          "chiSquareGof: expected mass must be positive");
        totalExpected += expected[i];
        totalObserved += observed[i];
    }
    UNCERTAIN_REQUIRE(totalObserved > 0, "chiSquareGof: no observations");

    double statistic = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        double expectedCount = expected[i] / totalExpected
                               * static_cast<double>(totalObserved);
        double diff = static_cast<double>(observed[i]) - expectedCount;
        statistic += diff * diff / expectedCount;
    }

    double dof = static_cast<double>(observed.size() - 1
                                     - constraintsFitted);
    double pValue = 1.0 - math::chiSquareCdf(statistic, dof);
    return {statistic, dof, pValue};
}

ChiSquareResult
chiSquareGofPooled(const std::vector<std::size_t>& observed,
                   const std::vector<double>& expected,
                   double minExpectedCount,
                   std::size_t constraintsFitted)
{
    UNCERTAIN_REQUIRE(!observed.empty()
                          && observed.size() == expected.size(),
                      "chiSquareGofPooled: parallel non-empty arrays "
                      "required");
    UNCERTAIN_REQUIRE(minExpectedCount > 0.0,
                      "chiSquareGofPooled: minExpectedCount must be "
                      "positive");

    double totalExpected = 0.0;
    std::size_t totalObserved = 0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        UNCERTAIN_REQUIRE(expected[i] >= 0.0,
                          "chiSquareGofPooled: expected mass must be "
                          "non-negative");
        totalExpected += expected[i];
        totalObserved += observed[i];
    }
    UNCERTAIN_REQUIRE(totalExpected > 0.0 && totalObserved > 0,
                      "chiSquareGofPooled: empty histogram");

    // Merge left to right until each group's expected count clears
    // the floor; a light trailing group joins its left neighbor.
    const double countScale =
        static_cast<double>(totalObserved) / totalExpected;
    std::vector<std::size_t> pooledObserved;
    std::vector<double> pooledExpected;
    std::size_t groupObserved = 0;
    double groupExpected = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        groupObserved += observed[i];
        groupExpected += expected[i];
        if (groupExpected * countScale >= minExpectedCount) {
            pooledObserved.push_back(groupObserved);
            pooledExpected.push_back(groupExpected);
            groupObserved = 0;
            groupExpected = 0.0;
        }
    }
    if (groupObserved > 0 || groupExpected > 0.0) {
        if (pooledObserved.empty()) {
            pooledObserved.push_back(groupObserved);
            pooledExpected.push_back(groupExpected);
        } else {
            pooledObserved.back() += groupObserved;
            pooledExpected.back() += groupExpected;
        }
    }

    UNCERTAIN_REQUIRE(pooledObserved.size() >= constraintsFitted + 2,
                      "chiSquareGofPooled: histogram too sparse — "
                      "pooling left fewer than 2 usable cells");
    return chiSquareGof(pooledObserved, pooledExpected,
                        constraintsFitted);
}

} // namespace stats
} // namespace uncertain
