#include "stats/chi_square.hpp"

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace stats {

ChiSquareResult
chiSquareGof(const std::vector<std::size_t>& observed,
             const std::vector<double>& expected,
             std::size_t constraintsFitted)
{
    UNCERTAIN_REQUIRE(!observed.empty(), "chiSquareGof: empty input");
    UNCERTAIN_REQUIRE(observed.size() == expected.size(),
                      "chiSquareGof: size mismatch");
    UNCERTAIN_REQUIRE(observed.size() > constraintsFitted + 1,
                      "chiSquareGof: not enough cells for the "
                      "requested constraints");

    double totalExpected = 0.0;
    std::size_t totalObserved = 0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        UNCERTAIN_REQUIRE(expected[i] > 0.0,
                          "chiSquareGof: expected mass must be positive");
        totalExpected += expected[i];
        totalObserved += observed[i];
    }
    UNCERTAIN_REQUIRE(totalObserved > 0, "chiSquareGof: no observations");

    double statistic = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        double expectedCount = expected[i] / totalExpected
                               * static_cast<double>(totalObserved);
        double diff = static_cast<double>(observed[i]) - expectedCount;
        statistic += diff * diff / expectedCount;
    }

    double dof = static_cast<double>(observed.size() - 1
                                     - constraintsFitted);
    double pValue = 1.0 - math::chiSquareCdf(statistic, dof);
    return {statistic, dof, pValue};
}

} // namespace stats
} // namespace uncertain
