/**
 * @file
 * Chain diagnostics: autocorrelation and effective sample size.
 * Used to validate the HMC posterior pools of src/nn (thinning
 * exists precisely because "the next sample in hybrid Monte Carlo
 * depends on the current sample", paper section 5.3) and the AR(1)
 * GPS error process of src/gps.
 */

#ifndef UNCERTAIN_STATS_AUTOCORRELATION_HPP
#define UNCERTAIN_STATS_AUTOCORRELATION_HPP

#include <cstddef>
#include <vector>

namespace uncertain {
namespace stats {

/**
 * Sample autocorrelation of @p xs at @p lag. Requires
 * lag < xs.size() and a non-constant series.
 */
double autocorrelation(const std::vector<double>& xs, std::size_t lag);

/**
 * Autocorrelation function up to @p maxLag inclusive (index 0 is
 * always 1).
 */
std::vector<double> autocorrelationFunction(
    const std::vector<double>& xs, std::size_t maxLag);

/**
 * Effective sample size of a correlated chain using the
 * initial-positive-sequence estimator: n / (1 + 2 sum rho_k), with
 * the sum truncated at the first non-positive autocorrelation.
 */
double effectiveSampleSize(const std::vector<double>& xs);

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_AUTOCORRELATION_HPP
