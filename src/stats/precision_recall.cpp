#include "stats/precision_recall.hpp"

#include "support/error.hpp"

namespace uncertain {
namespace stats {

void
ConfusionMatrix::add(bool truth, bool predicted)
{
    if (truth && predicted)
        ++tp_;
    else if (!truth && !predicted)
        ++tn_;
    else if (!truth && predicted)
        ++fp_;
    else
        ++fn_;
}

double
ConfusionMatrix::precision() const
{
    std::size_t predicted = tp_ + fp_;
    return predicted == 0
               ? 1.0
               : static_cast<double>(tp_)
                     / static_cast<double>(predicted);
}

double
ConfusionMatrix::recall() const
{
    std::size_t actual = tp_ + fn_;
    return actual == 0 ? 1.0
                       : static_cast<double>(tp_)
                             / static_cast<double>(actual);
}

double
ConfusionMatrix::f1() const
{
    double p = precision();
    double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double
ConfusionMatrix::accuracy() const
{
    UNCERTAIN_REQUIRE(total() > 0, "accuracy requires observations");
    return static_cast<double>(tp_ + tn_)
           / static_cast<double>(total());
}

double
ConfusionMatrix::falsePositiveRate() const
{
    std::size_t actualNegatives = fp_ + tn_;
    return actualNegatives == 0
               ? 0.0
               : static_cast<double>(fp_)
                     / static_cast<double>(actualNegatives);
}

} // namespace stats
} // namespace uncertain
