#include "stats/t_test.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace stats {

TTestResult
welchTTest(const OnlineSummary& a, const OnlineSummary& b)
{
    UNCERTAIN_REQUIRE(a.count() >= 2 && b.count() >= 2,
                      "welchTTest requires >= 2 observations each");
    double na = static_cast<double>(a.count());
    double nb = static_cast<double>(b.count());
    double va = a.variance() / na;
    double vb = b.variance() / nb;
    UNCERTAIN_REQUIRE(va + vb > 0.0,
                      "welchTTest: both samples are constant");

    double t = (a.mean() - b.mean()) / std::sqrt(va + vb);
    double nu = (va + vb) * (va + vb)
                / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    double tail = math::studentTCdf(-std::fabs(t), nu);
    return {t, nu, 2.0 * tail};
}

TTestResult
welchTTest(const std::vector<double>& a, const std::vector<double>& b)
{
    OnlineSummary sa;
    sa.addAll(a);
    OnlineSummary sb;
    sb.addAll(b);
    return welchTTest(sa, sb);
}

} // namespace stats
} // namespace uncertain
