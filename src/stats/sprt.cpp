#include "stats/sprt.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace uncertain {
namespace stats {

Sprt::Sprt(double threshold, const SprtOptions& options)
    : threshold_(threshold), maxSamples_(options.maxSamples)
{
    UNCERTAIN_REQUIRE(threshold > 0.0 && threshold < 1.0,
                      "SPRT threshold must be in (0, 1)");
    UNCERTAIN_REQUIRE(options.indifference > 0.0,
                      "SPRT indifference must be positive");
    UNCERTAIN_REQUIRE(options.alpha > 0.0 && options.alpha < 1.0,
                      "SPRT alpha must be in (0, 1)");
    UNCERTAIN_REQUIRE(options.beta > 0.0 && options.beta < 1.0,
                      "SPRT beta must be in (0, 1)");
    UNCERTAIN_REQUIRE(options.maxSamples >= 1,
                      "SPRT maxSamples must be >= 1");

    // Clamp the simple hypotheses into (0, 1) so thresholds near the
    // edges remain testable.
    constexpr double kEdge = 1e-4;
    double p0 = std::clamp(threshold - options.indifference, kEdge,
                           1.0 - 2.0 * kEdge);
    double p1 = std::clamp(threshold + options.indifference,
                           p0 + kEdge, 1.0 - kEdge);

    logIncrementSuccess_ = std::log(p1 / p0);
    logIncrementFailure_ = std::log((1.0 - p1) / (1.0 - p0));
    upperBoundary_ = std::log((1.0 - options.beta) / options.alpha);
    lowerBoundary_ = std::log(options.beta / (1.0 - options.alpha));
}

TestDecision
Sprt::add(bool success)
{
    if (isDecided() || samples_ >= maxSamples_)
        return decision_;

    ++samples_;
    if (success) {
        ++successes_;
        logLikelihoodRatio_ += logIncrementSuccess_;
    } else {
        logLikelihoodRatio_ += logIncrementFailure_;
    }

    if (logLikelihoodRatio_ >= upperBoundary_)
        decision_ = TestDecision::AcceptAlternative;
    else if (logLikelihoodRatio_ <= lowerBoundary_)
        decision_ = TestDecision::AcceptNull;
    return decision_;
}

TestDecision
Sprt::addMany(const std::uint8_t* observations, std::size_t count)
{
    for (std::size_t i = 0; i < count && !isDecided(); ++i)
        add(observations[i] != 0);
    return decision_;
}

bool
Sprt::isDecided() const
{
    return decision_ != TestDecision::Inconclusive;
}

double
Sprt::estimate() const
{
    UNCERTAIN_REQUIRE(samples_ >= 1, "SPRT estimate requires observations");
    return static_cast<double>(successes_)
           / static_cast<double>(samples_);
}

} // namespace stats
} // namespace uncertain
