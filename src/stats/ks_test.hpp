/**
 * @file
 * Kolmogorov-Smirnov goodness-of-fit tests. The test suite uses these
 * to property-check that every sampling function actually draws from
 * the distribution it claims to represent.
 */

#ifndef UNCERTAIN_STATS_KS_TEST_HPP
#define UNCERTAIN_STATS_KS_TEST_HPP

#include <vector>

#include "random/distribution.hpp"

namespace uncertain {
namespace stats {

/** Result of a KS test. */
struct KsResult
{
    double statistic; //!< sup |F_n - F|
    double pValue;    //!< asymptotic p-value

    bool rejectAt(double alpha) const { return pValue < alpha; }
};

/**
 * One-sample KS test of @p xs against the analytic CDF of
 * @p reference. Requires a non-empty sample.
 */
KsResult ksTest(std::vector<double> xs,
                const random::Distribution& reference);

/** Two-sample KS test. Requires both samples non-empty. */
KsResult ksTest2(std::vector<double> xs, std::vector<double> ys);

/**
 * Asymptotic Kolmogorov survival function
 * Q(lambda) = 2 sum (-1)^{j-1} exp(-2 j^2 lambda^2).
 */
double kolmogorovSurvival(double lambda);

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_KS_TEST_HPP
