/**
 * @file
 * Group sequential testing and adaptive mean estimation.
 *
 * The paper anticipates "adapting the considerable body of work on
 * group sequential methods ... which provide 'closed' sequential
 * hypothesis tests with guaranteed upper bounds on the sample size"
 * (section 4.3), and "a more intelligent adaptive sampling process,
 * sampling until the mean converges" for the evaluation operator E.
 * This module implements both extensions.
 */

#ifndef UNCERTAIN_STATS_SEQUENTIAL_HPP
#define UNCERTAIN_STATS_SEQUENTIAL_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/sprt.hpp"
#include "stats/summary.hpp"

namespace uncertain {
namespace stats {

/**
 * Pocock-style group sequential test for a Bernoulli proportion
 * against a threshold. The sample size is divided into K equally
 * sized looks; at each look the z statistic is compared against a
 * constant boundary chosen so the overall two-sided type-I error is
 * alpha. Unlike the open-ended SPRT, the total sample size is bounded
 * by design.
 */
class GroupSequentialTest
{
  public:
    /**
     * @param threshold null value of p, in (0, 1)
     * @param looks     number of interim analyses K (1..10)
     * @param totalSamples maximum total observations (split across looks)
     * @param alpha     overall two-sided significance level (0.05 or
     *                  0.01 supported)
     */
    GroupSequentialTest(double threshold, std::size_t looks,
                        std::size_t totalSamples, double alpha = 0.05);

    /**
     * Fold in one observation; evaluates the boundary at each look
     * and at exhaustion. Observations after a decision are ignored.
     */
    TestDecision add(bool success);

    /**
     * Fold in a pre-drawn chunk in index order, stopping at the first
     * terminal decision (see Sprt::addMany). Returns the running
     * decision.
     */
    TestDecision addMany(const std::uint8_t* observations,
                         std::size_t count);

    TestDecision decision() const { return decision_; }
    std::size_t samplesUsed() const { return samples_; }
    /** Empirical estimate of p; requires >= 1 observation. */
    double estimate() const;
    /** Maximum observations this test can consume. */
    std::size_t maxSamples() const { return totalSamples_; }

  private:
    void evaluateLook();

    double threshold_;
    std::size_t looks_;
    std::size_t totalSamples_;
    std::size_t perLook_;
    double boundary_;

    std::size_t samples_ = 0;
    std::size_t successes_ = 0;
    std::size_t looksTaken_ = 0;
    TestDecision decision_ = TestDecision::Inconclusive;
};

/**
 * Adaptive mean estimation: draw samples until the confidence
 * interval for the mean is narrower than a tolerance, or a cap is
 * reached.
 */
struct AdaptiveMeanOptions
{
    /** Stop when the CI half-width falls below this value... */
    double absoluteTolerance = 0.0;
    /** ...or below this fraction of |mean| (whichever is looser). */
    double relativeTolerance = 0.01;
    double confidence = 0.95;
    std::size_t minSamples = 16;
    std::size_t maxSamples = 100000;
};

/** Result of an adaptive mean estimation. */
struct AdaptiveMeanResult
{
    double mean;
    double halfWidth;
    std::size_t samplesUsed;
    bool converged;
};

/** Two-sided normal critical value for a confidence level in (0,1). */
double criticalZ(double confidence);

/**
 * Run adaptive mean estimation over @p draw, a callable returning one
 * sample per invocation.
 */
template <typename Sampler>
AdaptiveMeanResult
adaptiveMean(Sampler&& draw, const AdaptiveMeanOptions& options = {})
{
    OnlineSummary summary;
    for (std::size_t i = 0; i < options.maxSamples; ++i) {
        summary.add(draw());
        if (summary.count() < options.minSamples)
            continue;
        double se = summary.standardError();
        // Normal critical value; minSamples >= 16 keeps this honest.
        double half = 1.959963984540054 * se;
        if (options.confidence != 0.95) {
            half = se * criticalZ(options.confidence);
        }
        double tol = std::max(options.absoluteTolerance,
                              options.relativeTolerance
                                  * std::abs(summary.mean()));
        if (tol > 0.0 && half <= tol)
            return {summary.mean(), half, summary.count(), true};
    }
    double half = summary.count() >= 2
                      ? criticalZ(options.confidence)
                            * summary.standardError()
                      : 0.0;
    return {summary.mean(), half, summary.count(), false};
}

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_SEQUENTIAL_HPP
