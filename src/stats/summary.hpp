/**
 * @file
 * Online (Welford) and batch descriptive statistics.
 */

#ifndef UNCERTAIN_STATS_SUMMARY_HPP
#define UNCERTAIN_STATS_SUMMARY_HPP

#include <cstddef>
#include <vector>

namespace uncertain {
namespace stats {

/**
 * Numerically stable streaming summary: count, mean, variance,
 * extremes. Supports merging two summaries (parallel reduction).
 */
class OnlineSummary
{
  public:
    OnlineSummary() = default;

    /** Fold one observation into the summary. */
    void add(double x);

    /** Fold every element of @p xs into the summary. */
    void addAll(const std::vector<double>& xs);

    /** Merge another summary (Chan et al. pairwise update). */
    void merge(const OnlineSummary& other);

    std::size_t count() const { return count_; }
    /** Mean of the observations; requires count() >= 1. */
    double mean() const;
    /** Unbiased sample variance; requires count() >= 2. */
    double variance() const;
    /** sqrt(variance()). */
    double stddev() const;
    /** Standard error of the mean: stddev / sqrt(n). */
    double standardError() const;
    double min() const;
    double max() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Quantile of a sample by linear interpolation of order statistics
 * (type-7, matching Empirical::quantile). Sorts a copy. Requires a
 * non-empty sample and p in [0, 1].
 */
double quantile(std::vector<double> xs, double p);

/** Median shorthand. */
double median(std::vector<double> xs);

/** Sample mean; requires non-empty input. */
double mean(const std::vector<double>& xs);

/** Unbiased sample variance; requires >= 2 elements. */
double variance(const std::vector<double>& xs);

/** Sample standard deviation. */
double stddev(const std::vector<double>& xs);

/** Pearson correlation of two equal-length samples (>= 2 elements). */
double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys);

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_SUMMARY_HPP
