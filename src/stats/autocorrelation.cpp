#include "stats/autocorrelation.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace uncertain {
namespace stats {

double
autocorrelation(const std::vector<double>& xs, std::size_t lag)
{
    UNCERTAIN_REQUIRE(xs.size() >= 2, "autocorrelation needs >= 2 values");
    UNCERTAIN_REQUIRE(lag < xs.size(),
                      "autocorrelation lag exceeds series length");

    double mu = 0.0;
    for (double x : xs)
        mu += x;
    mu /= static_cast<double>(xs.size());

    double denominator = 0.0;
    for (double x : xs) {
        double d = x - mu;
        denominator += d * d;
    }
    UNCERTAIN_REQUIRE(denominator > 0.0,
                      "autocorrelation undefined for a constant series");

    double numerator = 0.0;
    for (std::size_t i = 0; i + lag < xs.size(); ++i)
        numerator += (xs[i] - mu) * (xs[i + lag] - mu);
    return numerator / denominator;
}

std::vector<double>
autocorrelationFunction(const std::vector<double>& xs,
                        std::size_t maxLag)
{
    UNCERTAIN_REQUIRE(maxLag < xs.size(),
                      "autocorrelationFunction: maxLag too large");
    std::vector<double> acf;
    acf.reserve(maxLag + 1);
    for (std::size_t lag = 0; lag <= maxLag; ++lag)
        acf.push_back(autocorrelation(xs, lag));
    return acf;
}

double
effectiveSampleSize(const std::vector<double>& xs)
{
    UNCERTAIN_REQUIRE(xs.size() >= 2,
                      "effectiveSampleSize needs >= 2 values");
    double n = static_cast<double>(xs.size());
    double tail = 0.0;
    std::size_t maxLag = std::min<std::size_t>(xs.size() - 1, 1000);
    for (std::size_t lag = 1; lag <= maxLag; ++lag) {
        double rho = autocorrelation(xs, lag);
        if (rho <= 0.0)
            break;
        tail += rho;
    }
    return std::clamp(n / (1.0 + 2.0 * tail), 1.0, n);
}

} // namespace stats
} // namespace uncertain
