#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace uncertain {
namespace stats {

void
OnlineSummary::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
OnlineSummary::addAll(const std::vector<double>& xs)
{
    for (double x : xs)
        add(x);
}

void
OnlineSummary::merge(const OnlineSummary& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineSummary::mean() const
{
    UNCERTAIN_REQUIRE(count_ >= 1, "mean of empty summary");
    return mean_;
}

double
OnlineSummary::variance() const
{
    UNCERTAIN_REQUIRE(count_ >= 2, "variance requires >= 2 observations");
    return m2_ / static_cast<double>(count_ - 1);
}

double
OnlineSummary::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineSummary::standardError() const
{
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double
OnlineSummary::min() const
{
    UNCERTAIN_REQUIRE(count_ >= 1, "min of empty summary");
    return min_;
}

double
OnlineSummary::max() const
{
    UNCERTAIN_REQUIRE(count_ >= 1, "max of empty summary");
    return max_;
}

double
quantile(std::vector<double> xs, double p)
{
    UNCERTAIN_REQUIRE(!xs.empty(), "quantile of empty sample");
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0, "quantile requires p in [0, 1]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    double h = p * static_cast<double>(xs.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(h));
    auto hi = std::min(lo + 1, xs.size() - 1);
    double frac = h - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
median(std::vector<double> xs)
{
    return quantile(std::move(xs), 0.5);
}

double
mean(const std::vector<double>& xs)
{
    UNCERTAIN_REQUIRE(!xs.empty(), "mean of empty sample");
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
variance(const std::vector<double>& xs)
{
    UNCERTAIN_REQUIRE(xs.size() >= 2, "variance requires >= 2 elements");
    double mu = mean(xs);
    double ss = 0.0;
    for (double x : xs) {
        double d = x - mu;
        ss += d * d;
    }
    return ss / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double>& xs)
{
    return std::sqrt(variance(xs));
}

double
correlation(const std::vector<double>& xs, const std::vector<double>& ys)
{
    UNCERTAIN_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
                      "correlation requires equal-length samples >= 2");
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    UNCERTAIN_REQUIRE(sxx > 0.0 && syy > 0.0,
                      "correlation undefined for constant samples");
    return sxy / std::sqrt(sxx * syy);
}

} // namespace stats
} // namespace uncertain
