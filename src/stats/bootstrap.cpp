#include "stats/bootstrap.hpp"

#include <algorithm>

#include "stats/summary.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace stats {

BootstrapResult
bootstrap(const std::vector<double>& sample,
          const std::function<double(const std::vector<double>&)>&
              statistic,
          const BootstrapOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(!sample.empty(), "bootstrap: empty sample");
    UNCERTAIN_REQUIRE(statistic != nullptr,
                      "bootstrap: missing statistic");
    UNCERTAIN_REQUIRE(options.resamples >= 10,
                      "bootstrap: need >= 10 resamples");
    UNCERTAIN_REQUIRE(options.confidence > 0.0
                          && options.confidence < 1.0,
                      "bootstrap: confidence must be in (0, 1)");

    std::vector<double> statistics;
    statistics.reserve(options.resamples);
    std::vector<double> resample(sample.size());
    for (std::size_t b = 0; b < options.resamples; ++b) {
        for (double& x : resample) {
            x = sample[static_cast<std::size_t>(
                rng.nextBelow(sample.size()))];
        }
        statistics.push_back(statistic(resample));
    }

    double tail = 0.5 * (1.0 - options.confidence);
    Interval interval{quantile(statistics, tail),
                      quantile(std::move(statistics), 1.0 - tail)};
    return {statistic(sample), interval};
}

BootstrapResult
bootstrap(const std::vector<double>& sample,
          const std::function<double(const std::vector<double>&)>&
              statistic,
          const BootstrapOptions& options)
{
    return bootstrap(sample, statistic, options, globalRng());
}

} // namespace stats
} // namespace uncertain
