/**
 * @file
 * Binary-classification bookkeeping for the Parakeet evaluation
 * (Figure 16: precision/recall versus the conditional threshold).
 */

#ifndef UNCERTAIN_STATS_PRECISION_RECALL_HPP
#define UNCERTAIN_STATS_PRECISION_RECALL_HPP

#include <cstddef>

namespace uncertain {
namespace stats {

/**
 * Confusion-matrix accumulator. Precision describes false positives,
 * recall describes false negatives, exactly as the paper frames the
 * trade-off developers control with conditional thresholds.
 */
class ConfusionMatrix
{
  public:
    /** Record one (ground truth, prediction) pair. */
    void add(bool truth, bool predicted);

    std::size_t truePositives() const { return tp_; }
    std::size_t trueNegatives() const { return tn_; }
    std::size_t falsePositives() const { return fp_; }
    std::size_t falseNegatives() const { return fn_; }
    std::size_t total() const { return tp_ + tn_ + fp_ + fn_; }

    /** TP / (TP + FP); 1.0 when no positives were predicted. */
    double precision() const;
    /** TP / (TP + FN); 1.0 when there were no actual positives. */
    double recall() const;
    /** Harmonic mean of precision and recall. */
    double f1() const;
    /** (TP + TN) / total; requires >= 1 observation. */
    double accuracy() const;
    /** FP / (FP + TN); 0.0 when there were no actual negatives. */
    double falsePositiveRate() const;

  private:
    std::size_t tp_ = 0;
    std::size_t tn_ = 0;
    std::size_t fp_ = 0;
    std::size_t fn_ = 0;
};

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_PRECISION_RECALL_HPP
