#include "stats/confidence.hpp"

#include <cmath>

#include "random/student_t.hpp"
#include "support/error.hpp"
#include "support/special_math.hpp"

namespace uncertain {
namespace stats {

Interval
meanConfidenceInterval(const OnlineSummary& summary, double confidence)
{
    UNCERTAIN_REQUIRE(summary.count() >= 2,
                      "mean CI requires >= 2 observations");
    UNCERTAIN_REQUIRE(confidence > 0.0 && confidence < 1.0,
                      "confidence must be in (0, 1)");
    double nu = static_cast<double>(summary.count() - 1);
    double tail = 0.5 * (1.0 + confidence);
    // Large samples: normal critical value avoids the t bisection.
    double critical = summary.count() > 200
                          ? math::normalQuantile(tail)
                          : random::StudentT(nu).quantile(tail);
    double half = critical * summary.standardError();
    return {summary.mean() - half, summary.mean() + half};
}

Interval
meanConfidenceInterval(const std::vector<double>& xs, double confidence)
{
    OnlineSummary summary;
    summary.addAll(xs);
    return meanConfidenceInterval(summary, confidence);
}

Interval
proportionConfidenceInterval(std::size_t successes, std::size_t trials,
                             double confidence)
{
    UNCERTAIN_REQUIRE(trials >= 1, "proportion CI requires >= 1 trial");
    UNCERTAIN_REQUIRE(successes <= trials,
                      "successes cannot exceed trials");
    UNCERTAIN_REQUIRE(confidence > 0.0 && confidence < 1.0,
                      "confidence must be in (0, 1)");

    double n = static_cast<double>(trials);
    double pHat = static_cast<double>(successes) / n;
    double z = math::normalQuantile(0.5 * (1.0 + confidence));
    double z2 = z * z;

    double denom = 1.0 + z2 / n;
    double center = (pHat + z2 / (2.0 * n)) / denom;
    double half = z / denom
                  * std::sqrt(pHat * (1.0 - pHat) / n
                              + z2 / (4.0 * n * n));
    return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

} // namespace stats
} // namespace uncertain
