/**
 * @file
 * Welch's two-sample t-test: are two measured means different? Used
 * to compare bench configurations (e.g. variant error rates) with a
 * principled significance statement instead of eyeballing.
 */

#ifndef UNCERTAIN_STATS_T_TEST_HPP
#define UNCERTAIN_STATS_T_TEST_HPP

#include <vector>

#include "stats/summary.hpp"

namespace uncertain {
namespace stats {

/** Result of a Welch t-test. */
struct TTestResult
{
    double statistic;        //!< Welch t
    double degreesOfFreedom; //!< Welch-Satterthwaite approximation
    double pValue;           //!< two-sided

    bool rejectAt(double alpha) const { return pValue < alpha; }
};

/**
 * Welch's unequal-variance t-test of mean(a) == mean(b). Requires
 * both samples to have >= 2 elements and non-zero variance in at
 * least one sample.
 */
TTestResult welchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

/** Summary-based overload (counts/means/variances already known). */
TTestResult welchTTest(const OnlineSummary& a, const OnlineSummary& b);

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_T_TEST_HPP
