#include "stats/certify.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "support/error.hpp"

namespace uncertain {
namespace stats {

namespace {

/**
 * Shared drawing loop: pull blocks through @p sample, classify each
 * draw with @p cellOf, and time the sampler (classification excluded
 * so samplesPerSecond reports the sampler, not the harness).
 */
template <typename CellOf>
void
countCells(const BulkSampler& sample, Rng& rng,
           const CertifyOptions& options, CellOf&& cellOf,
           std::vector<std::uint64_t>& counts, double& seconds)
{
    std::vector<double> buffer(std::min(options.blockSize,
                                        options.samples));
    std::size_t remaining = options.samples;
    seconds = 0.0;
    while (remaining > 0) {
        const std::size_t m = std::min(buffer.size(), remaining);
        const auto start = std::chrono::steady_clock::now();
        sample(rng, buffer.data(), m);
        const auto stop = std::chrono::steady_clock::now();
        seconds += std::chrono::duration<double>(stop - start).count();
        for (std::size_t i = 0; i < m; ++i)
            ++counts[cellOf(buffer[i])];
        remaining -= m;
    }
}

} // namespace

BulkSampler
scalarSampler(random::DistributionPtr dist)
{
    UNCERTAIN_REQUIRE(dist != nullptr,
                      "scalarSampler requires a distribution");
    return [dist = std::move(dist)](Rng& rng, double* out,
                                    std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = dist->sample(rng);
    };
}

BulkSampler
bulkSampler(random::DistributionPtr dist)
{
    UNCERTAIN_REQUIRE(dist != nullptr,
                      "bulkSampler requires a distribution");
    return [dist = std::move(dist)](Rng& rng, double* out,
                                    std::size_t n) {
        dist->sampleMany(rng, out, n);
    };
}

CertifyResult
certifyFromCounts(const std::string& name,
                  const std::vector<std::uint64_t>& observed,
                  const std::vector<double>& expected, double delta)
{
    UNCERTAIN_REQUIRE(!observed.empty()
                          && observed.size() == expected.size(),
                      "certifyFromCounts: counts/masses must be "
                      "parallel non-empty arrays");
    UNCERTAIN_REQUIRE(delta > 0.0 && delta < 1.0,
                      "certifyFromCounts: delta must be in (0, 1)");

    std::uint64_t total = 0;
    double mass = 0.0;
    for (std::size_t k = 0; k < observed.size(); ++k) {
        UNCERTAIN_REQUIRE(expected[k] >= 0.0,
                          "certifyFromCounts: negative expected mass");
        total += observed[k];
        mass += expected[k];
    }
    UNCERTAIN_REQUIRE(total > 0, "certifyFromCounts: no observations");
    UNCERTAIN_REQUIRE(std::abs(mass - 1.0) < 1e-9,
                      "certifyFromCounts: expected masses must sum "
                      "to 1");

    const double n = static_cast<double>(total);
    double l1 = 0.0;
    double nullBias = 0.0;
    for (std::size_t k = 0; k < observed.size(); ++k) {
        const double phat = static_cast<double>(observed[k]) / n;
        l1 += std::abs(phat - expected[k]);
        nullBias += std::sqrt(expected[k] * (1.0 - expected[k]) / n);
    }
    const double deviation = std::sqrt(2.0 * std::log(1.0 / delta) / n);
    const double universalBias =
        std::sqrt(static_cast<double>(observed.size()) / n);

    CertifyResult result;
    result.sampler = name;
    result.samples = total;
    result.cells = observed.size();
    result.delta = delta;
    result.tvEstimate = 0.5 * l1;
    result.threshold = 0.5 * (nullBias + deviation);
    result.epsilon = 0.5 * (universalBias + deviation);
    result.tvUpperBound = result.tvEstimate + result.epsilon;
    result.pass = result.tvEstimate <= result.threshold;
    return result;
}

CertifyResult
certifyContinuous(const std::string& name, const BulkSampler& sample,
                  const random::Distribution& truth, Rng& rng,
                  const CertifyOptions& options)
{
    UNCERTAIN_REQUIRE(options.cells >= 2,
                      "certifyContinuous: need at least 2 cells");
    UNCERTAIN_REQUIRE(options.samples > 0,
                      "certifyContinuous: need at least 1 sample");

    const std::size_t cells = options.cells;
    std::vector<std::uint64_t> counts(cells, 0);
    double seconds = 0.0;
    countCells(
        sample, rng, options,
        [&truth, cells](double x) {
            // Probability-integral transform: equiprobable quantile
            // cells without ever calling quantile().
            const double u = truth.cdf(x);
            const auto k = static_cast<std::size_t>(
                std::min(u, 1.0 - 1e-16)
                * static_cast<double>(cells));
            return std::min(k, cells - 1);
        },
        counts, seconds);

    std::vector<double> expected(cells,
                                 1.0 / static_cast<double>(cells));
    CertifyResult result =
        certifyFromCounts(name, counts, expected, options.delta);
    result.seconds = seconds;
    result.samplesPerSecond =
        seconds > 0.0 ? static_cast<double>(options.samples) / seconds
                      : 0.0;
    return result;
}

CertifyResult
certifyDiscrete(const std::string& name, const BulkSampler& sample,
                const std::vector<double>& values,
                const std::vector<double>& probabilities, Rng& rng,
                const CertifyOptions& options)
{
    UNCERTAIN_REQUIRE(!values.empty()
                          && values.size() == probabilities.size(),
                      "certifyDiscrete: values/probabilities must be "
                      "parallel non-empty arrays");

    // Support values are exactly-representable doubles (the exact
    // backend's contract), so the cell map is an exact-key hash; any
    // draw not matching bit-for-bit goes to the zero-mass overflow
    // cell and counts fully against the sampler.
    std::unordered_map<double, std::size_t> cellOf;
    cellOf.reserve(values.size());
    for (std::size_t k = 0; k < values.size(); ++k) {
        UNCERTAIN_REQUIRE(cellOf.emplace(values[k], k).second,
                          "certifyDiscrete: duplicate support value");
    }
    const std::size_t overflow = values.size();

    std::vector<std::uint64_t> counts(values.size() + 1, 0);
    double seconds = 0.0;
    countCells(
        sample, rng, options,
        [&cellOf, overflow](double x) {
            auto it = cellOf.find(x);
            return it == cellOf.end() ? overflow : it->second;
        },
        counts, seconds);

    std::vector<double> expected = probabilities;
    expected.push_back(0.0);
    // Tolerate truncated supports (e.g. a Poisson cut at 1e-14 tail
    // mass): fold any sub-1e-9 shortfall into the largest cell so the
    // masses sum to 1 exactly.
    double mass = 0.0;
    for (double q : expected)
        mass += q;
    UNCERTAIN_REQUIRE(std::abs(mass - 1.0) < 1e-9,
                      "certifyDiscrete: probabilities must sum to 1");
    auto top = std::max_element(expected.begin(), expected.end());
    *top += 1.0 - mass;

    CertifyResult result =
        certifyFromCounts(name, counts, expected, options.delta);
    result.seconds = seconds;
    result.samplesPerSecond =
        seconds > 0.0 ? static_cast<double>(options.samples) / seconds
                      : 0.0;
    return result;
}

std::string
certificationJson(const std::vector<CertifyResult>& results)
{
    std::ostringstream out;
    out.precision(12);
    out << "{\n  \"certifications\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CertifyResult& r = results[i];
        out << "    {\"name\": \"" << r.sampler << "\", "
            << "\"samples\": " << r.samples << ", "
            << "\"cells\": " << r.cells << ", "
            << "\"delta\": " << r.delta << ", "
            << "\"tv_estimate\": " << r.tvEstimate << ", "
            << "\"threshold\": " << r.threshold << ", "
            << "\"epsilon\": " << r.epsilon << ", "
            << "\"tv_upper_bound\": " << r.tvUpperBound << ", "
            << "\"pass\": " << (r.pass ? "true" : "false") << ", "
            << "\"seconds\": " << r.seconds << ", "
            << "\"samples_per_second\": " << r.samplesPerSecond << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

} // namespace stats
} // namespace uncertain
