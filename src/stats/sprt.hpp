/**
 * @file
 * Wald's sequential probability ratio test (SPRT) for a Bernoulli
 * parameter. This is the paper's mechanism for executing conditionals
 * on uncertain data (section 4.3): sample batches of evidence until
 * Pr[condition] is significantly above or below the threshold, capping
 * the sample count to guarantee termination.
 */

#ifndef UNCERTAIN_STATS_SPRT_HPP
#define UNCERTAIN_STATS_SPRT_HPP

#include <cstddef>
#include <cstdint>

namespace uncertain {
namespace stats {

/** Outcome of a sequential test. */
enum class TestDecision
{
    AcceptNull,        //!< evidence that p <= threshold
    AcceptAlternative, //!< evidence that p > threshold
    Inconclusive,      //!< still sampling, or capped without significance
};

/** Tuning knobs for the SPRT (defaults follow the paper's narrative). */
struct SprtOptions
{
    /**
     * Half-width of the indifference region: the test discriminates
     * H0: p <= threshold - indifference from
     * H1: p >= threshold + indifference. Within the region either
     * answer is acceptable.
     */
    double indifference = 0.05;
    /** Bound on false positives (rejecting a true H0). */
    double alpha = 0.05;
    /** Bound on false negatives (power = 1 - beta). */
    double beta = 0.05;
    /** Samples drawn per batch ("step size k", paper uses k = 10). */
    std::size_t batchSize = 10;
    /**
     * Artificial cap that guarantees termination (the SPRT alone is
     * potentially unbounded). Hitting the cap yields Inconclusive.
     */
    std::size_t maxSamples = 1000;
};

/**
 * Incremental SPRT. Feed Bernoulli observations with add(); the
 * decision becomes AcceptNull or AcceptAlternative when the
 * log-likelihood ratio crosses Wald's boundaries
 * log(beta/(1-alpha)) and log((1-beta)/alpha).
 */
class Sprt
{
  public:
    /**
     * @param threshold the probability the conditional compares
     *        against (0.5 for the implicit operator); must lie in
     *        (0, 1)
     * @param options   test tuning
     */
    explicit Sprt(double threshold, const SprtOptions& options = {});

    /**
     * Fold in one observation and return the running decision.
     * Observations after a terminal decision are ignored.
     */
    TestDecision add(bool success);

    /**
     * Fold in a pre-drawn chunk of observations in index order,
     * stopping at the first terminal decision. This is how the
     * parallel engine consumes batches: the chunk is drawn eagerly
     * (possibly concurrently), but the boundaries see observations in
     * exactly the order a serial test would, so the decision — and
     * samplesUsed() — match a serial SPRT fed the same sequence.
     * Returns the running decision.
     */
    TestDecision addMany(const std::uint8_t* observations,
                         std::size_t count);

    /** Current decision (Inconclusive until a boundary is crossed). */
    TestDecision decision() const { return decision_; }

    /** True once AcceptNull/AcceptAlternative has been reached. */
    bool isDecided() const;

    /** True once maxSamples observations have been consumed. */
    bool isCapped() const { return samples_ >= maxSamples_; }

    /** Number of observations consumed. */
    std::size_t samplesUsed() const { return samples_; }

    /** Empirical estimate of p; requires >= 1 observation. */
    double estimate() const;

    double threshold() const { return threshold_; }

  private:
    double threshold_;
    double logIncrementSuccess_;
    double logIncrementFailure_;
    double upperBoundary_; //!< log((1-beta)/alpha): accept H1 above
    double lowerBoundary_; //!< log(beta/(1-alpha)): accept H0 below
    std::size_t maxSamples_;

    double logLikelihoodRatio_ = 0.0;
    std::size_t samples_ = 0;
    std::size_t successes_ = 0;
    TestDecision decision_ = TestDecision::Inconclusive;
};

} // namespace stats
} // namespace uncertain

#endif // UNCERTAIN_STATS_SPRT_HPP
