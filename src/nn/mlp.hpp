/**
 * @file
 * A small multi-layer perceptron with tanh hidden units and a linear
 * output: the function family y(x; w) of the Parakeet case study
 * (paper section 5.3). Weights live in one flat vector so the
 * hybrid Monte Carlo sampler in nn/hmc.hpp can treat the network as
 * a point in R^d.
 */

#ifndef UNCERTAIN_NN_MLP_HPP
#define UNCERTAIN_NN_MLP_HPP

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace uncertain {
namespace nn {

/** A supervised regression dataset. */
struct Dataset
{
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;

    std::size_t size() const { return inputs.size(); }
};

/**
 * Fully connected feed-forward network, scalar output. The
 * architecture (layer widths) is fixed at construction; the weights
 * are owned by the caller as a flat vector, making the class a pure
 * function evaluator/differentiator — exactly what both SGD and HMC
 * need.
 */
class Mlp
{
  public:
    /**
     * @param layerSizes widths from input to output, e.g. {9, 8, 1}
     *        for the Parrot Sobel topology. Requires >= 2 layers and
     *        an output width of 1.
     */
    explicit Mlp(std::vector<std::size_t> layerSizes);

    /** Total number of weights and biases. */
    std::size_t parameterCount() const { return parameterCount_; }

    const std::vector<std::size_t>& layerSizes() const
    {
        return layerSizes_;
    }

    /** Gaussian(0, scale) initial weight vector. */
    std::vector<double> initialWeights(Rng& rng,
                                       double scale = 0.5) const;

    /** Evaluate y(x; w). Requires matching input/weight sizes. */
    double forward(const std::vector<double>& weights,
                   const std::vector<double>& input) const;

    /**
     * Accumulate into @p grad the gradient, with respect to the
     * weights, of the squared-error term 0.5 * (y(x; w) - target)^2.
     * Returns the residual y(x; w) - target. @p grad must have
     * parameterCount() entries.
     */
    double accumulateGradient(const std::vector<double>& weights,
                              const std::vector<double>& input,
                              double target,
                              std::vector<double>& grad) const;

    /** Mean squared error of the network over a dataset. */
    double meanSquaredError(const std::vector<double>& weights,
                            const Dataset& data) const;

  private:
    std::vector<std::size_t> layerSizes_;
    std::size_t parameterCount_;
    // Offsets of each layer's weight block / bias block in the flat
    // vector; layer l maps layerSizes_[l] -> layerSizes_[l+1].
    std::vector<std::size_t> weightOffsets_;
    std::vector<std::size_t> biasOffsets_;
};

} // namespace nn
} // namespace uncertain

#endif // UNCERTAIN_NN_MLP_HPP
