/**
 * @file
 * The Sobel-operator workload of the Parakeet case study (paper
 * section 5.3, from the Parrot evaluation): compute the gradient of
 * image intensity at a pixel, normalized to [0, 1]; an edge is a
 * gradient above 0.1.
 *
 * Substitution (documented in DESIGN.md): Parrot trained on image
 * data we do not have; we synthesize procedural grayscale images
 * (smooth gradients, discs, and stripes plus mild noise) and compute
 * the exact Sobel response as ground truth. The experiment measures
 * generalization error amplified by a threshold conditional, which
 * any image-like corpus with exact labels exercises identically.
 */

#ifndef UNCERTAIN_NN_SOBEL_HPP
#define UNCERTAIN_NN_SOBEL_HPP

#include <array>
#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace nn {

/** A 3x3 grayscale patch, row-major, intensities in [0, 1]. */
using Patch = std::array<double, 9>;

/** Edge threshold used throughout the case study: s(p) > 0.1. */
inline constexpr double kEdgeThreshold = 0.1;

/**
 * Exact Sobel response of a patch: gradient magnitude from the
 * standard Gx/Gy kernels, normalized by the maximum attainable
 * magnitude so the output lies in [0, 1].
 */
double sobel(const Patch& patch);

/** A synthetic grayscale image. */
class SyntheticImage
{
  public:
    /**
     * Procedurally generate a @p size x @p size image.
     * @param pixelNoise per-pixel Gaussian noise amplitude; larger
     *        values blur the boundary between "flat" and "edge"
     *        patches, which is what gives the learned approximation
     *        genuine generalization error near the threshold.
     */
    SyntheticImage(std::size_t size, Rng& rng,
                   double pixelNoise = 0.02);

    std::size_t size() const { return size_; }
    double at(std::size_t x, std::size_t y) const;

    /** The 3x3 patch centered at (x, y); requires an interior pixel. */
    Patch patchAt(std::size_t x, std::size_t y) const;

  private:
    std::size_t size_;
    std::vector<double> pixels_;
};

/**
 * Build a Sobel regression dataset of @p count patches sampled from
 * freshly generated synthetic images: inputs are the 9 pixel
 * intensities, targets the exact Sobel response.
 */
Dataset makeSobelDataset(std::size_t count, Rng& rng,
                         double pixelNoise = 0.02);

} // namespace nn
} // namespace uncertain

#endif // UNCERTAIN_NN_SOBEL_HPP
