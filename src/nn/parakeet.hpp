/**
 * @file
 * Parakeet: code approximation with Bayesian neural networks,
 * encapsulated in Uncertain<T> (paper section 5.3).
 *
 * Training runs twice over the same data:
 *  - SGD produces the single weight vector Parrot would ship
 *    (the point-estimate baseline);
 *  - HMC, started from the SGD solution, samples the weight
 *    posterior; the retained pool approximates the posterior
 *    predictive distribution p(t | x, D) by Monte Carlo integration.
 *
 * predict(x) returns an Uncertain<double> whose sampling function
 * picks uniformly from the pool's outputs at x — one PPD draw,
 * exactly the fixed-pool scheme the paper describes. The outputs are
 * precomputed at predict() time (|pool| forward passes), so repeated
 * draws are pool picks and the leaf is a first-class citizen of the
 * columnar batch engine (core::fromPool).
 */

#ifndef UNCERTAIN_NN_PARAKEET_HPP
#define UNCERTAIN_NN_PARAKEET_HPP

#include <memory>
#include <vector>

#include "core/core.hpp"
#include "nn/hmc.hpp"
#include "nn/laplace.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

namespace uncertain {
namespace nn {

/** How the weight posterior is approximated (paper section 5.3). */
enum class PosteriorMethod
{
    Hmc,     //!< hybrid Monte Carlo (the paper's implementation)
    Laplace, //!< diagonal Gaussian approximation (the alternative
             //!< trade-off the paper discusses)
};

/** End-to-end Parakeet training configuration. */
struct ParakeetOptions
{
    /** Network topology; {9, 8, 1} is Parrot's Sobel network. */
    std::vector<std::size_t> topology{9, 8, 1};
    SgdOptions sgd{};
    PosteriorMethod posterior = PosteriorMethod::Hmc;
    HmcOptions hmc{};
    LaplaceOptions laplace{};
    /**
     * Cap on the training examples the posterior fit sees (full-data
     * gradients are the cost center; the SGD baseline always uses
     * everything). 0 means no cap.
     */
    std::size_t hmcDataLimit = 1500;
};

/** A trained Parakeet model. */
class Parakeet
{
  public:
    /** Train the Parrot baseline and the posterior pool on @p data. */
    static Parakeet train(const Dataset& data,
                          const ParakeetOptions& options, Rng& rng);

    /** Parrot's single-network prediction (the point estimate). */
    double parrotPredict(const std::vector<double>& input) const;

    /** The PPD at @p input as an uncertain value. */
    Uncertain<double> predict(const std::vector<double>& input) const;

    /** All pool predictions at @p input (for density plots). */
    std::vector<double>
    posteriorPredictions(const std::vector<double>& input) const;

    std::size_t poolSize() const { return pool_->size(); }
    const Mlp& network() const { return network_; }
    double parrotTrainingMse() const { return parrotMse_; }
    double hmcAcceptanceRate() const { return acceptanceRate_; }

  private:
    Parakeet(Mlp network, std::vector<double> parrotWeights,
             std::shared_ptr<std::vector<std::vector<double>>> pool,
             double parrotMse, double acceptanceRate);

    Mlp network_;
    std::vector<double> parrotWeights_;
    std::shared_ptr<std::vector<std::vector<double>>> pool_;
    double parrotMse_;
    double acceptanceRate_;
};

} // namespace nn
} // namespace uncertain

#endif // UNCERTAIN_NN_PARAKEET_HPP
