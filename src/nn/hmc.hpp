/**
 * @file
 * Hybrid (Hamiltonian) Monte Carlo over network weights: the
 * posterior sampler Parakeet uses to approximate the posterior
 * predictive distribution (paper section 5.3, following Neal).
 *
 * Posterior: p(w | D) proportional to
 *   exp(-||w||^2 / (2 sigma_w^2))          (Gaussian weight prior)
 *   x prod_i N(t_i; y(x_i; w), sigma_n)    (Gaussian noise model)
 *
 * The sampler simulates Hamiltonian dynamics with the leapfrog
 * integrator and accepts/rejects with a Metropolis test; the step
 * size adapts during burn-in toward a target acceptance rate, the
 * "hand tuning" the paper complains HMC usually requires.
 */

#ifndef UNCERTAIN_NN_HMC_HPP
#define UNCERTAIN_NN_HMC_HPP

#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace nn {

/** HMC hyperparameters. */
struct HmcOptions
{
    double priorSigma = 2.0;     //!< sigma_w of the weight prior
    double noiseSigma = 0.05;    //!< sigma_n of the observation model
    std::size_t leapfrogSteps = 15;
    double initialStepSize = 1e-3;
    double targetAcceptance = 0.8;
    std::size_t burnIn = 200;    //!< adaptation iterations (discarded)
    std::size_t thinning = 10;   //!< keep every M-th draw (the paper's
                                 //!< "retain every Mth sample")
    std::size_t posteriorSamples = 64; //!< pool size to collect
};

/** The collected posterior pool plus chain diagnostics. */
struct HmcResult
{
    /** Retained weight vectors, each describing one neural network. */
    std::vector<std::vector<double>> pool;
    double acceptanceRate;  //!< post-burn-in acceptance fraction
    double finalStepSize;
    std::size_t iterations; //!< total HMC iterations run
};

/**
 * Run HMC for @p network on @p data starting from @p initialWeights
 * (typically the SGD solution, which cuts burn-in dramatically).
 */
HmcResult sampleHmc(const Mlp& network, const Dataset& data,
                    const std::vector<double>& initialWeights,
                    const HmcOptions& options, Rng& rng);

} // namespace nn
} // namespace uncertain

#endif // UNCERTAIN_NN_HMC_HPP
