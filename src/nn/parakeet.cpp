#include "nn/parakeet.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace uncertain {
namespace nn {

Parakeet::Parakeet(Mlp network, std::vector<double> parrotWeights,
                   std::shared_ptr<std::vector<std::vector<double>>> pool,
                   double parrotMse, double acceptanceRate)
    : network_(std::move(network)),
      parrotWeights_(std::move(parrotWeights)), pool_(std::move(pool)),
      parrotMse_(parrotMse), acceptanceRate_(acceptanceRate)
{}

Parakeet
Parakeet::train(const Dataset& data, const ParakeetOptions& options,
                Rng& rng)
{
    UNCERTAIN_REQUIRE(data.size() >= 2, "Parakeet::train requires data");

    Mlp network(options.topology);

    // Phase 1: the Parrot baseline (a single point estimate).
    TrainResult sgd = trainSgd(network, data, options.sgd, rng);
    double parrotMse = network.meanSquaredError(sgd.weights, data);

    // Phase 2: HMC around the mode SGD found.
    Dataset hmcData;
    const Dataset* hmcView = &data;
    if (options.hmcDataLimit != 0
        && data.size() > options.hmcDataLimit) {
        hmcData.inputs.assign(
            data.inputs.begin(),
            data.inputs.begin()
                + static_cast<std::ptrdiff_t>(options.hmcDataLimit));
        hmcData.targets.assign(
            data.targets.begin(),
            data.targets.begin()
                + static_cast<std::ptrdiff_t>(options.hmcDataLimit));
        hmcView = &hmcData;
    }
    std::vector<std::vector<double>> poolDraws;
    double acceptanceRate = 1.0;
    if (options.posterior == PosteriorMethod::Hmc) {
        HmcResult chain = sampleHmc(network, *hmcView, sgd.weights,
                                    options.hmc, rng);
        UNCERTAIN_REQUIRE(!chain.pool.empty(),
                          "Parakeet::train: HMC produced no samples");
        poolDraws = std::move(chain.pool);
        acceptanceRate = chain.acceptanceRate;
    } else {
        LaplaceResult fit = laplaceApproximate(
            network, *hmcView, sgd.weights, options.laplace, rng);
        poolDraws = std::move(fit.pool);
    }

    auto pool = std::make_shared<std::vector<std::vector<double>>>(
        std::move(poolDraws));
    return {std::move(network), std::move(sgd.weights),
            std::move(pool), parrotMse, acceptanceRate};
}

double
Parakeet::parrotPredict(const std::vector<double>& input) const
{
    return network_.forward(parrotWeights_, input);
}

Uncertain<double>
Parakeet::predict(const std::vector<double>& input) const
{
    // Evaluate every pool network at this input once, up front; one
    // draw = one uniform pick from the fixed output pool, exactly
    // the same law (and the same random stream) as picking a network
    // per draw and running forward. The pool leaf carries a bulk
    // sampler, so conditionals over the PPD compile to columnar
    // batch plans, and repeated draws cost an array pick instead of
    // a forward pass. The pool outlives this Parakeet.
    auto outputs = std::make_shared<std::vector<double>>();
    outputs->reserve(pool_->size());
    for (const auto& weights : *pool_)
        outputs->push_back(network_.forward(weights, input));
    return core::fromPool<double>(std::move(outputs), "ppd");
}

std::vector<double>
Parakeet::posteriorPredictions(const std::vector<double>& input) const
{
    std::vector<double> out;
    out.reserve(pool_->size());
    for (const auto& weights : *pool_)
        out.push_back(network_.forward(weights, input));
    return out;
}

} // namespace nn
} // namespace uncertain
