#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace uncertain {
namespace nn {

TrainResult
trainSgd(const Mlp& network, const Dataset& data,
         const SgdOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(data.size() >= 1, "trainSgd requires data");
    UNCERTAIN_REQUIRE(data.inputs.size() == data.targets.size(),
                      "trainSgd: inputs/targets size mismatch");
    UNCERTAIN_REQUIRE(options.batchSize >= 1,
                      "trainSgd: batchSize must be >= 1");

    std::vector<double> weights = network.initialWeights(rng);
    std::vector<double> velocity(weights.size(), 0.0);
    std::vector<double> grad(weights.size(), 0.0);

    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    TrainResult result;
    result.epochMse.reserve(options.epochs);

    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        // Fisher-Yates shuffle with our own generator.
        for (std::size_t i = order.size(); i > 1; --i) {
            std::size_t j =
                static_cast<std::size_t>(rng.nextBelow(i));
            std::swap(order[i - 1], order[j]);
        }

        for (std::size_t start = 0; start < order.size();
             start += options.batchSize) {
            std::size_t end =
                std::min(start + options.batchSize, order.size());
            std::fill(grad.begin(), grad.end(), 0.0);
            for (std::size_t k = start; k < end; ++k) {
                std::size_t idx = order[k];
                network.accumulateGradient(weights, data.inputs[idx],
                                           data.targets[idx], grad);
            }
            double scale = 1.0 / static_cast<double>(end - start);
            for (std::size_t i = 0; i < weights.size(); ++i) {
                double g = grad[i] * scale
                           + options.weightDecay * weights[i];
                velocity[i] = options.momentum * velocity[i]
                              - options.learningRate * g;
                weights[i] += velocity[i];
            }
        }
        result.epochMse.push_back(
            network.meanSquaredError(weights, data));
    }

    result.weights = std::move(weights);
    return result;
}

} // namespace nn
} // namespace uncertain
