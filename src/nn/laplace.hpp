/**
 * @file
 * Laplace (Gaussian) approximation of the weight posterior: the
 * alternative PPD construction the paper weighs against hybrid Monte
 * Carlo ("a Gaussian approximation to the PPD would mitigate all
 * these downsides, but may be an inappropriate approximation in some
 * cases", section 5.3).
 *
 * The posterior is approximated as a diagonal Gaussian centered at a
 * mode (the SGD solution), with per-weight precisions from the
 * Gauss-Newton diagonal of the negative log posterior:
 *   H_jj ~ (1/sigma_n^2) sum_i (dy(x_i;w)/dw_j)^2 + 1/sigma_w^2.
 * Sampling the approximation is trivially cheap compared to running
 * an HMC chain — that is the trade-off being offered.
 */

#ifndef UNCERTAIN_NN_LAPLACE_HPP
#define UNCERTAIN_NN_LAPLACE_HPP

#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace nn {

/** Laplace-approximation hyperparameters (match HmcOptions names). */
struct LaplaceOptions
{
    double priorSigma = 2.0;  //!< sigma_w of the weight prior
    double noiseSigma = 0.05; //!< sigma_n of the observation model
    std::size_t posteriorSamples = 64; //!< pool size to draw
};

/** The fitted approximation plus its drawn pool. */
struct LaplaceResult
{
    /** Posterior standard deviation of each weight. */
    std::vector<double> weightStddevs;
    /** Weight vectors drawn from the Gaussian approximation. */
    std::vector<std::vector<double>> pool;
};

/**
 * Fit the diagonal Laplace approximation around @p modeWeights
 * (typically the SGD solution) and draw the posterior pool.
 */
LaplaceResult laplaceApproximate(const Mlp& network,
                                 const Dataset& data,
                                 const std::vector<double>& modeWeights,
                                 const LaplaceOptions& options,
                                 Rng& rng);

} // namespace nn
} // namespace uncertain

#endif // UNCERTAIN_NN_LAPLACE_HPP
