#include "nn/sobel.hpp"

#include <algorithm>
#include <cmath>

#include "random/gaussian.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace nn {

double
sobel(const Patch& p)
{
    // Gx = [-1 0 1; -2 0 2; -1 0 1], Gy = Gx^T.
    double gx = -p[0] + p[2] - 2.0 * p[3] + 2.0 * p[5] - p[6] + p[8];
    double gy = -p[0] - 2.0 * p[1] - p[2] + p[6] + 2.0 * p[7] + p[8];
    // Each kernel's response is bounded by 4 in magnitude for inputs
    // in [0, 1], so the magnitude is bounded by 4*sqrt(2).
    return std::sqrt(gx * gx + gy * gy) / (4.0 * std::sqrt(2.0));
}

SyntheticImage::SyntheticImage(std::size_t size, Rng& rng,
                               double pixelNoise)
    : size_(size), pixels_(size * size, 0.0)
{
    UNCERTAIN_REQUIRE(size >= 3, "SyntheticImage requires size >= 3");

    // Base: a smooth linear gradient in a random direction.
    double angle = rng.nextRange(0.0, 2.0 * M_PI);
    double gx = std::cos(angle);
    double gy = std::sin(angle);
    double bias = rng.nextRange(0.2, 0.8);
    double slope = rng.nextRange(0.0, 0.6) / static_cast<double>(size);
    for (std::size_t y = 0; y < size_; ++y) {
        for (std::size_t x = 0; x < size_; ++x) {
            double v = bias
                       + slope
                             * (gx * static_cast<double>(x)
                                + gy * static_cast<double>(y));
            pixels_[y * size_ + x] = v;
        }
    }

    // Sharp-edged discs: the interesting (edge) content.
    std::size_t discs = 2 + static_cast<std::size_t>(rng.nextBelow(4));
    for (std::size_t d = 0; d < discs; ++d) {
        double cx = rng.nextRange(0.0, static_cast<double>(size_));
        double cy = rng.nextRange(0.0, static_cast<double>(size_));
        double radius =
            rng.nextRange(2.0, static_cast<double>(size_) / 3.0);
        double level = rng.nextRange(0.0, 1.0);
        for (std::size_t y = 0; y < size_; ++y) {
            for (std::size_t x = 0; x < size_; ++x) {
                double dx = static_cast<double>(x) - cx;
                double dy = static_cast<double>(y) - cy;
                if (dx * dx + dy * dy <= radius * radius)
                    pixels_[y * size_ + x] = level;
            }
        }
    }

    // Occasional stripe (a long straight edge).
    if (rng.nextBool(0.5)) {
        std::size_t row = rng.nextBelow(size_);
        std::size_t thickness = 1 + rng.nextBelow(3);
        double level = rng.nextRange(0.0, 1.0);
        for (std::size_t y = row;
             y < std::min(row + thickness, size_); ++y) {
            for (std::size_t x = 0; x < size_; ++x)
                pixels_[y * size_ + x] = level;
        }
    }

    // Pixel noise, clamped to the valid range.
    for (double& v : pixels_) {
        v += pixelNoise * random::Gaussian::standardSample(rng);
        v = std::clamp(v, 0.0, 1.0);
    }
}

double
SyntheticImage::at(std::size_t x, std::size_t y) const
{
    UNCERTAIN_REQUIRE(x < size_ && y < size_,
                      "SyntheticImage coordinates out of range");
    return pixels_[y * size_ + x];
}

Patch
SyntheticImage::patchAt(std::size_t x, std::size_t y) const
{
    UNCERTAIN_REQUIRE(x >= 1 && y >= 1 && x + 1 < size_
                          && y + 1 < size_,
                      "patchAt requires an interior pixel");
    Patch patch;
    std::size_t k = 0;
    for (std::size_t dy = 0; dy < 3; ++dy)
        for (std::size_t dx = 0; dx < 3; ++dx)
            patch[k++] = at(x + dx - 1, y + dy - 1);
    return patch;
}

Dataset
makeSobelDataset(std::size_t count, Rng& rng, double pixelNoise)
{
    UNCERTAIN_REQUIRE(count >= 1, "makeSobelDataset requires count >= 1");
    Dataset data;
    data.inputs.reserve(count);
    data.targets.reserve(count);

    constexpr std::size_t kImageSize = 32;
    constexpr std::size_t kPatchesPerImage = 64;

    while (data.size() < count) {
        SyntheticImage image(kImageSize, rng, pixelNoise);
        for (std::size_t i = 0;
             i < kPatchesPerImage && data.size() < count; ++i) {
            std::size_t x = 1 + rng.nextBelow(kImageSize - 2);
            std::size_t y = 1 + rng.nextBelow(kImageSize - 2);
            Patch patch = image.patchAt(x, y);
            data.inputs.emplace_back(patch.begin(), patch.end());
            data.targets.push_back(sobel(patch));
        }
    }
    return data;
}

} // namespace nn
} // namespace uncertain
