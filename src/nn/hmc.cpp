#include "nn/hmc.hpp"

#include <algorithm>
#include <cmath>

#include "random/gaussian.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace nn {

namespace {

/**
 * Potential energy U(w) = negative log posterior (up to a constant)
 * and its gradient.
 */
class Posterior
{
  public:
    Posterior(const Mlp& network, const Dataset& data,
              const HmcOptions& options)
        : network_(network), data_(data),
          invNoiseVar_(1.0
                       / (options.noiseSigma * options.noiseSigma)),
          invPriorVar_(1.0
                       / (options.priorSigma * options.priorSigma))
    {}

    double
    energy(const std::vector<double>& w) const
    {
        double sse = 0.0;
        for (std::size_t i = 0; i < data_.size(); ++i) {
            double r =
                network_.forward(w, data_.inputs[i]) - data_.targets[i];
            sse += r * r;
        }
        double norm2 = 0.0;
        for (double v : w)
            norm2 += v * v;
        return 0.5 * invNoiseVar_ * sse + 0.5 * invPriorVar_ * norm2;
    }

    void
    gradient(const std::vector<double>& w,
             std::vector<double>& grad) const
    {
        std::fill(grad.begin(), grad.end(), 0.0);
        for (std::size_t i = 0; i < data_.size(); ++i) {
            network_.accumulateGradient(w, data_.inputs[i],
                                        data_.targets[i], grad);
        }
        for (std::size_t i = 0; i < w.size(); ++i)
            grad[i] = invNoiseVar_ * grad[i] + invPriorVar_ * w[i];
    }

  private:
    const Mlp& network_;
    const Dataset& data_;
    double invNoiseVar_;
    double invPriorVar_;
};

} // namespace

HmcResult
sampleHmc(const Mlp& network, const Dataset& data,
          const std::vector<double>& initialWeights,
          const HmcOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(initialWeights.size() == network.parameterCount(),
                      "sampleHmc: wrong initial weight size");
    UNCERTAIN_REQUIRE(options.leapfrogSteps >= 1,
                      "sampleHmc: need >= 1 leapfrog step");
    UNCERTAIN_REQUIRE(options.posteriorSamples >= 1,
                      "sampleHmc: need >= 1 posterior sample");
    UNCERTAIN_REQUIRE(options.thinning >= 1,
                      "sampleHmc: thinning must be >= 1");

    Posterior posterior(network, data, options);
    std::size_t dim = network.parameterCount();

    std::vector<double> position = initialWeights;
    double energy = posterior.energy(position);
    std::vector<double> grad(dim);
    posterior.gradient(position, grad);

    double stepSize = options.initialStepSize;
    std::size_t accepted = 0;
    std::size_t postBurnIterations = 0;

    HmcResult result;
    result.pool.reserve(options.posteriorSamples);

    std::vector<double> momentum(dim);
    std::vector<double> trialPosition(dim);
    std::vector<double> trialGrad(dim);

    std::size_t totalNeeded =
        options.burnIn + options.thinning * options.posteriorSamples;
    for (std::size_t iter = 0; iter < totalNeeded; ++iter) {
        // Fresh Gaussian momentum; kinetic energy ||p||^2 / 2.
        double kinetic = 0.0;
        for (double& p : momentum) {
            p = random::Gaussian::standardSample(rng);
            kinetic += p * p;
        }
        kinetic *= 0.5;

        // Leapfrog from the current state.
        trialPosition = position;
        trialGrad = grad;
        for (std::size_t i = 0; i < dim; ++i)
            momentum[i] -= 0.5 * stepSize * trialGrad[i];
        for (std::size_t step = 0; step < options.leapfrogSteps;
             ++step) {
            for (std::size_t i = 0; i < dim; ++i)
                trialPosition[i] += stepSize * momentum[i];
            posterior.gradient(trialPosition, trialGrad);
            double half =
                (step + 1 == options.leapfrogSteps) ? 0.5 : 1.0;
            for (std::size_t i = 0; i < dim; ++i)
                momentum[i] -= half * stepSize * trialGrad[i];
        }

        double trialEnergy = posterior.energy(trialPosition);
        double trialKinetic = 0.0;
        for (double p : momentum)
            trialKinetic += p * p;
        trialKinetic *= 0.5;

        double logAccept =
            (energy + kinetic) - (trialEnergy + trialKinetic);
        bool accept = std::log(rng.nextDoubleOpen()) < logAccept;
        if (accept) {
            position.swap(trialPosition);
            grad.swap(trialGrad);
            energy = trialEnergy;
        }

        if (iter < options.burnIn) {
            // Robbins-Monro-style step-size adaptation: the fixed
            // point of these multipliers is acceptance == target.
            constexpr double kAdaptGain = 0.1;
            stepSize *=
                accept ? 1.0
                             + kAdaptGain
                                   * (1.0 - options.targetAcceptance)
                       : 1.0 - kAdaptGain * options.targetAcceptance;
            stepSize = std::clamp(stepSize, 1e-7, 1.0);
        } else {
            ++postBurnIterations;
            accepted += accept ? 1 : 0;
            std::size_t sinceBurn = iter - options.burnIn + 1;
            if (sinceBurn % options.thinning == 0
                && result.pool.size() < options.posteriorSamples) {
                result.pool.push_back(position);
            }
        }
    }

    result.acceptanceRate =
        postBurnIterations == 0
            ? 0.0
            : static_cast<double>(accepted)
                  / static_cast<double>(postBurnIterations);
    result.finalStepSize = stepSize;
    result.iterations = totalNeeded;
    return result;
}

} // namespace nn
} // namespace uncertain
