/**
 * @file
 * Stochastic gradient descent training: the "traditional training"
 * that produces Parrot's single weight vector (paper section 5.3).
 */

#ifndef UNCERTAIN_NN_TRAINER_HPP
#define UNCERTAIN_NN_TRAINER_HPP

#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace nn {

/** SGD hyperparameters. */
struct SgdOptions
{
    std::size_t epochs = 200;
    std::size_t batchSize = 32;
    double learningRate = 0.05;
    double momentum = 0.9;
    double weightDecay = 1e-5;
};

/** Training output: final weights and per-epoch training MSE. */
struct TrainResult
{
    std::vector<double> weights;
    std::vector<double> epochMse;
};

/**
 * Train @p network on @p data with minibatch SGD + momentum from a
 * fresh random initialization.
 */
TrainResult trainSgd(const Mlp& network, const Dataset& data,
                     const SgdOptions& options, Rng& rng);

} // namespace nn
} // namespace uncertain

#endif // UNCERTAIN_NN_TRAINER_HPP
