#include "nn/mlp.hpp"

#include <cmath>

#include "random/gaussian.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace nn {

Mlp::Mlp(std::vector<std::size_t> layerSizes)
    : layerSizes_(std::move(layerSizes))
{
    UNCERTAIN_REQUIRE(layerSizes_.size() >= 2,
                      "Mlp requires at least input and output layers");
    UNCERTAIN_REQUIRE(layerSizes_.back() == 1,
                      "Mlp supports scalar outputs");
    for (std::size_t width : layerSizes_)
        UNCERTAIN_REQUIRE(width >= 1, "Mlp layer widths must be >= 1");

    std::size_t offset = 0;
    for (std::size_t l = 0; l + 1 < layerSizes_.size(); ++l) {
        weightOffsets_.push_back(offset);
        offset += layerSizes_[l] * layerSizes_[l + 1];
        biasOffsets_.push_back(offset);
        offset += layerSizes_[l + 1];
    }
    parameterCount_ = offset;
}

std::vector<double>
Mlp::initialWeights(Rng& rng, double scale) const
{
    std::vector<double> weights(parameterCount_);
    for (double& w : weights)
        w = scale * random::Gaussian::standardSample(rng);
    return weights;
}

double
Mlp::forward(const std::vector<double>& weights,
             const std::vector<double>& input) const
{
    UNCERTAIN_REQUIRE(weights.size() == parameterCount_,
                      "Mlp::forward: wrong weight vector size");
    UNCERTAIN_REQUIRE(input.size() == layerSizes_.front(),
                      "Mlp::forward: wrong input size");

    std::vector<double> activation = input;
    std::vector<double> next;
    for (std::size_t l = 0; l + 1 < layerSizes_.size(); ++l) {
        std::size_t in = layerSizes_[l];
        std::size_t out = layerSizes_[l + 1];
        const double* w = weights.data() + weightOffsets_[l];
        const double* b = weights.data() + biasOffsets_[l];
        next.assign(out, 0.0);
        for (std::size_t j = 0; j < out; ++j) {
            double z = b[j];
            const double* row = w + j * in;
            for (std::size_t i = 0; i < in; ++i)
                z += row[i] * activation[i];
            bool hidden = (l + 2 < layerSizes_.size());
            next[j] = hidden ? std::tanh(z) : z;
        }
        activation.swap(next);
    }
    return activation[0];
}

double
Mlp::accumulateGradient(const std::vector<double>& weights,
                        const std::vector<double>& input, double target,
                        std::vector<double>& grad) const
{
    UNCERTAIN_REQUIRE(weights.size() == parameterCount_,
                      "Mlp::accumulateGradient: wrong weight size");
    UNCERTAIN_REQUIRE(grad.size() == parameterCount_,
                      "Mlp::accumulateGradient: wrong gradient size");
    UNCERTAIN_REQUIRE(input.size() == layerSizes_.front(),
                      "Mlp::accumulateGradient: wrong input size");

    // Forward pass, retaining every layer's activations.
    std::size_t layers = layerSizes_.size();
    std::vector<std::vector<double>> activations(layers);
    activations[0] = input;
    for (std::size_t l = 0; l + 1 < layers; ++l) {
        std::size_t in = layerSizes_[l];
        std::size_t out = layerSizes_[l + 1];
        const double* w = weights.data() + weightOffsets_[l];
        const double* b = weights.data() + biasOffsets_[l];
        activations[l + 1].assign(out, 0.0);
        for (std::size_t j = 0; j < out; ++j) {
            double z = b[j];
            const double* row = w + j * in;
            for (std::size_t i = 0; i < in; ++i)
                z += row[i] * activations[l][i];
            bool hidden = (l + 2 < layers);
            activations[l + 1][j] = hidden ? std::tanh(z) : z;
        }
    }

    double residual = activations.back()[0] - target;

    // Backward pass: delta starts as d(0.5 r^2)/dy = r.
    std::vector<double> delta{residual};
    std::vector<double> prevDelta;
    for (std::size_t l = layers - 1; l-- > 0;) {
        std::size_t in = layerSizes_[l];
        std::size_t out = layerSizes_[l + 1];
        const double* w = weights.data() + weightOffsets_[l];
        double* gw = grad.data() + weightOffsets_[l];
        double* gb = grad.data() + biasOffsets_[l];

        for (std::size_t j = 0; j < out; ++j) {
            double d = delta[j];
            gb[j] += d;
            double* grow = gw + j * in;
            for (std::size_t i = 0; i < in; ++i)
                grow[i] += d * activations[l][i];
        }

        if (l == 0)
            break;
        // Propagate to the previous (hidden, tanh) layer.
        prevDelta.assign(in, 0.0);
        for (std::size_t j = 0; j < out; ++j) {
            double d = delta[j];
            const double* row = w + j * in;
            for (std::size_t i = 0; i < in; ++i)
                prevDelta[i] += d * row[i];
        }
        for (std::size_t i = 0; i < in; ++i) {
            double a = activations[l][i];
            prevDelta[i] *= 1.0 - a * a; // tanh'
        }
        delta.swap(prevDelta);
    }
    return residual;
}

double
Mlp::meanSquaredError(const std::vector<double>& weights,
                      const Dataset& data) const
{
    UNCERTAIN_REQUIRE(data.size() >= 1,
                      "meanSquaredError requires data");
    double total = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        double r = forward(weights, data.inputs[i]) - data.targets[i];
        total += r * r;
    }
    return total / static_cast<double>(data.size());
}

} // namespace nn
} // namespace uncertain
