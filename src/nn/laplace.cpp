#include "nn/laplace.hpp"

#include <cmath>

#include "random/gaussian.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace nn {

LaplaceResult
laplaceApproximate(const Mlp& network, const Dataset& data,
                   const std::vector<double>& modeWeights,
                   const LaplaceOptions& options, Rng& rng)
{
    UNCERTAIN_REQUIRE(modeWeights.size() == network.parameterCount(),
                      "laplaceApproximate: wrong mode weight size");
    UNCERTAIN_REQUIRE(data.size() >= 1,
                      "laplaceApproximate requires data");
    UNCERTAIN_REQUIRE(options.priorSigma > 0.0
                          && options.noiseSigma > 0.0,
                      "laplaceApproximate: sigmas must be positive");
    UNCERTAIN_REQUIRE(options.posteriorSamples >= 1,
                      "laplaceApproximate: need >= 1 sample");

    const std::size_t dim = network.parameterCount();
    std::vector<double> hessianDiagonal(
        dim, 1.0 / (options.priorSigma * options.priorSigma));

    // Gauss-Newton diagonal: accumulate (dy/dw_j)^2 per example. The
    // trick: accumulateGradient with target = y - 1 makes the
    // residual exactly 1, so the accumulated gradient IS dy/dw.
    std::vector<double> grad(dim);
    const double invNoiseVar =
        1.0 / (options.noiseSigma * options.noiseSigma);
    for (std::size_t i = 0; i < data.size(); ++i) {
        std::fill(grad.begin(), grad.end(), 0.0);
        double y = network.forward(modeWeights, data.inputs[i]);
        network.accumulateGradient(modeWeights, data.inputs[i],
                                   y - 1.0, grad);
        for (std::size_t j = 0; j < dim; ++j)
            hessianDiagonal[j] += invNoiseVar * grad[j] * grad[j];
    }

    LaplaceResult result;
    result.weightStddevs.resize(dim);
    for (std::size_t j = 0; j < dim; ++j)
        result.weightStddevs[j] = 1.0 / std::sqrt(hessianDiagonal[j]);

    result.pool.reserve(options.posteriorSamples);
    for (std::size_t s = 0; s < options.posteriorSamples; ++s) {
        std::vector<double> draw(dim);
        for (std::size_t j = 0; j < dim; ++j) {
            draw[j] = modeWeights[j]
                      + result.weightStddevs[j]
                            * random::Gaussian::standardSample(rng);
        }
        result.pool.push_back(std::move(draw));
    }
    return result;
}

} // namespace nn
} // namespace uncertain
