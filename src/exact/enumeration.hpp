/**
 * @file
 * Exact enumeration backend: support tables and the joint-enumeration
 * builder the node graph lowers into.
 *
 * The stochastic engines approximate pr()/E by sampling; for graphs
 * whose leaves all have *finite support* (Bernoulli, discrete,
 * point-mass) every question they answer has a closed form. This
 * module computes it. A graph is lowered bottom-up into entries, one
 * per node (interned by identity, exactly like the batch plan's SSA
 * form): each entry records the sorted set of stochastic leaves it
 * depends on and a dense table mapping every *joint assignment* of
 * those leaves to the node's value under that assignment. Because the
 * table is indexed by leaf assignments — not by the node's own value
 * distribution — shared subexpressions stay perfectly correlated:
 * both occurrences of X in (Y + X) + X read the same leaf digit, so
 * the Figure 8(b) semantics that the sampling engines realize with
 * epoch memos hold here by construction, exactly.
 *
 * Tables are combined with a mixed-radix odometer over the union of
 * the operands' leaf sets; a leaf absent from an operand simply gets
 * stride 0 into that operand's table (marginalization is implicit —
 * its probabilities sum to one). Queries then walk a root entry's
 * joint states once, weighting each by the product of its leaf
 * probabilities, to produce event probabilities, full pmfs, moments,
 * and discrete conditionals.
 *
 * The builder *refuses* — throws exact::Unsupported — graphs it
 * cannot enumerate: any leaf without a finite-support table
 * (continuous distributions, opaque sampling functions, pools) or any
 * node whose joint state count exceeds EnumerationLimits. Refusal is
 * cheap (the first offending leaf throws) and is how the conditional
 * router in core/uncertain.hpp decides between the closed form and
 * the SPRT loop.
 */

#ifndef UNCERTAIN_EXACT_ENUMERATION_HPP
#define UNCERTAIN_EXACT_ENUMERATION_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <typeindex>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace uncertain {
namespace exact {

/**
 * Thrown when a graph cannot be enumerated exactly: a leaf lacks a
 * finite support table, or the joint state count exceeds the bound.
 * Derives from uncertain::Error, but callers that route between the
 * exact and sampling paths catch this type specifically — any other
 * Error is a real user mistake and must propagate.
 */
class Unsupported : public Error
{
  public:
    explicit Unsupported(const std::string& reason)
        : Error("exact backend: " + reason), reason_(reason)
    {}

    /** Why the graph was refused, without the "exact backend" prefix. */
    const std::string& reason() const { return reason_; }

  private:
    std::string reason_;
};

/** Configurable bounds on the enumeration. */
struct EnumerationLimits
{
    /**
     * Maximum number of joint assignments any single entry may span
     * (the product of its leaves' support sizes). Graphs exceeding it
     * are refused, not truncated.
     */
    std::size_t maxJointStates = std::size_t{1} << 20;
};

/**
 * Explicit finite support of a leaf: parallel (value, probability)
 * arrays. Probabilities are normalized by the factories that build
 * these (core::fromFiniteSupport, random::Distribution::finiteSupport).
 */
template <typename T>
struct FiniteSupport
{
    std::vector<T> values;
    std::vector<double> probabilities;
};

namespace detail {

/** Kahan-compensated accumulator for probability masses. */
class KahanSum
{
  public:
    void
    add(double x)
    {
        const double y = x - compensation_;
        const double t = sum_ + y;
        compensation_ = (t - sum_) - y;
        sum_ = t;
    }

    double value() const { return sum_; }

  private:
    double sum_ = 0.0;
    double compensation_ = 0.0;
};

} // namespace detail

/**
 * Accumulates support tables during exact lowering. Mirrors
 * core::BatchBuilder's shape: nodes are interned by identity via
 * find()/npos so a shared subexpression is lowered exactly once, and
 * Node<T>::lowerExact drives the recursion. Keys are const void*
 * (node addresses) so this header has no dependency on the node
 * classes.
 */
class ExactBuilder
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    explicit ExactBuilder(EnumerationLimits limits = {})
        : limits_(limits)
    {}

    /**
     * Drop all lowered state but keep buffer capacity, so a builder
     * can be reused across conditional evaluations without paying the
     * vector growth of a fresh instance each call. Takes the limits
     * for the next lowering since the router threads them per call.
     */
    void
    reset(EnumerationLimits limits)
    {
        limits_ = limits;
        leaves_.clear();
        entries_.clear();
        interned_.clear();
    }

    /** Entry already lowered for @p node, or npos. */
    std::size_t
    find(const void* node) const
    {
        // Flat association list: lowered graphs are tens of nodes,
        // where a linear scan beats hashing and costs no allocation
        // on the conditional fast path.
        for (const auto& [key, index] : interned_) {
            if (key == node)
                return index;
        }
        return npos;
    }

    /** Refuse the graph: throws Unsupported with @p reason. */
    [[noreturn]] static void
    refuse(const std::string& reason)
    {
        throw Unsupported(reason);
    }

    /**
     * Lower a stochastic leaf with explicit finite support. Each call
     * introduces one enumeration dimension; the entry's table is the
     * identity map digit -> value.
     *
     * The builder *borrows* both arrays — they are the leaf node's
     * own support storage and must outlive the builder (every query
     * lowers and reads while the graph is alive), which keeps the
     * conditional fast path free of per-leaf copies.
     */
    template <typename T>
    std::size_t
    addLeaf(const void* node, const std::vector<T>& values,
            const std::vector<double>& probabilities)
    {
        UNCERTAIN_REQUIRE(!values.empty()
                              && values.size() == probabilities.size(),
                          "finite support requires parallel non-empty "
                          "value/probability arrays");
        if (values.size() > limits_.maxJointStates) {
            refuse("leaf support of " + std::to_string(values.size())
                   + " values exceeds the enumeration bound of "
                   + std::to_string(limits_.maxJointStates)
                   + " joint states");
        }
        const auto leafId = static_cast<std::uint32_t>(leaves_.size());
        leaves_.push_back(Leaf{&probabilities});
        Entry entry;
        entry.leaves = {leafId};
        entry.states = values.size();
        entry.type = std::type_index(typeid(T));
        entry.table = std::shared_ptr<const void>(
            std::shared_ptr<const void>{}, &values);
        return intern(node, std::move(entry));
    }

    /** Lower a point mass: one state, no leaves. */
    template <typename T>
    std::size_t
    addConst(const void* node, const T& value)
    {
        Entry entry;
        entry.states = 1;
        entry.type = std::type_index(typeid(T));
        entry.table =
            std::make_shared<std::vector<T>>(std::vector<T>{value});
        return intern(node, std::move(entry));
    }

    /** Lower R = op(A) over an operand entry. */
    template <typename R, typename A, typename F>
    std::size_t
    addUnary(const void* node, std::size_t operand, const F& op)
    {
        const auto& ta = table<A>(operand);
        const std::size_t ops[] = {operand};
        return emit<R>(node, ops, 1,
                       [&](const std::size_t* idx) -> R {
                           return static_cast<R>(
                               op(static_cast<A>(ta[idx[0]])));
                       });
    }

    /** Lower R = op(A, B) over two operand entries. */
    template <typename R, typename A, typename B, typename F>
    std::size_t
    addBinary(const void* node, std::size_t lhs, std::size_t rhs,
              const F& op)
    {
        const auto& ta = table<A>(lhs);
        const auto& tb = table<B>(rhs);
        const std::size_t ops[] = {lhs, rhs};
        return emit<R>(node, ops, 2,
                       [&](const std::size_t* idx) -> R {
                           return static_cast<R>(
                               op(static_cast<A>(ta[idx[0]]),
                                  static_cast<B>(tb[idx[1]])));
                       });
    }

    /** Lower R = op(A, B, C) over three operand entries. */
    template <typename R, typename A, typename B, typename C,
              typename F>
    std::size_t
    addTernary(const void* node, std::size_t first, std::size_t second,
               std::size_t third, const F& op)
    {
        const auto& ta = table<A>(first);
        const auto& tb = table<B>(second);
        const auto& tc = table<C>(third);
        const std::size_t ops[] = {first, second, third};
        return emit<R>(node, ops, 3,
                       [&](const std::size_t* idx) -> R {
                           return static_cast<R>(
                               op(static_cast<A>(ta[idx[0]]),
                                  static_cast<B>(tb[idx[1]]),
                                  static_cast<C>(tc[idx[2]])));
                       });
    }

    /** Number of distinct stochastic leaves lowered so far. */
    std::size_t leafCount() const { return leaves_.size(); }

    /** Number of entries (== SSA values) lowered so far. */
    std::size_t entryCount() const { return entries_.size(); }

    /** Joint states spanned by @p entry's table. */
    std::size_t
    states(std::size_t entry) const
    {
        return entries_.at(entry).states;
    }

    /** Distinct stochastic leaves @p entry depends on. */
    std::size_t
    leafDependencies(std::size_t entry) const
    {
        return entries_.at(entry).leaves.size();
    }

    /**
     * Pr[entry == true] for a boolean entry: one weighted walk over
     * its joint states.
     */
    double
    eventProbability(std::size_t entry) const
    {
        const Entry& e = checked<bool>(entry);
        const auto& values = *std::static_pointer_cast<
            const std::vector<bool>>(e.table);
        detail::KahanSum mass;
        const Entry* ops[] = {&e};
        forEachJoint(e.leaves, ops, 1,
                     [&](std::size_t, const std::size_t* idx,
                         const std::size_t* digits) {
                         if (values[idx[0]])
                             mass.add(jointWeight(e.leaves, digits));
                     });
        return mass.value();
    }

    /**
     * Full pmf of @p entry: sorted (value, probability) pairs, equal
     * values merged. The probabilities are un-normalized sums of
     * joint weights, so their total exposes enumeration round-off to
     * the conformance tests (it must be 1 within ~1e-12).
     */
    template <typename T>
    std::vector<std::pair<T, double>>
    distribution(std::size_t entry) const
    {
        const Entry& e = checked<T>(entry);
        const auto& values =
            *std::static_pointer_cast<const std::vector<T>>(e.table);
        std::map<T, detail::KahanSum> pmf;
        const Entry* ops[] = {&e};
        forEachJoint(e.leaves, ops, 1,
                     [&](std::size_t, const std::size_t* idx,
                         const std::size_t* digits) {
                         pmf[static_cast<T>(values[idx[0]])].add(
                             jointWeight(e.leaves, digits));
                     });
        std::vector<std::pair<T, double>> out;
        out.reserve(pmf.size());
        for (const auto& [value, mass] : pmf)
            out.emplace_back(value, mass.value());
        return out;
    }

    /**
     * Discrete conditioning (the closed form of inference reweight):
     * pmf of @p target given that boolean @p evidence is true, both
     * entries lowered in this builder so shared leaves stay joint.
     * Throws Error when the evidence has probability zero.
     */
    template <typename T>
    std::vector<std::pair<T, double>>
    conditioned(std::size_t target, std::size_t evidence) const
    {
        const Entry& t = checked<T>(target);
        const Entry& ev = checked<bool>(evidence);
        const auto& targetValues =
            *std::static_pointer_cast<const std::vector<T>>(t.table);
        const auto& evidenceValues = *std::static_pointer_cast<
            const std::vector<bool>>(ev.table);

        std::vector<std::uint32_t> leaves = unionLeaves(t.leaves,
                                                        ev.leaves);
        checkStates(leaves);
        std::map<T, detail::KahanSum> pmf;
        detail::KahanSum evidenceMass;
        const Entry* ops[] = {&t, &ev};
        forEachJoint(leaves, ops, 2,
                     [&](std::size_t, const std::size_t* idx,
                         const std::size_t* digits) {
                         if (!evidenceValues[idx[1]])
                             return;
                         const double w = jointWeight(leaves, digits);
                         evidenceMass.add(w);
                         pmf[static_cast<T>(targetValues[idx[0]])]
                             .add(w);
                     });
        UNCERTAIN_REQUIRE(evidenceMass.value() > 0.0,
                          "cannot condition on zero-probability "
                          "evidence");
        std::vector<std::pair<T, double>> out;
        out.reserve(pmf.size());
        for (const auto& [value, mass] : pmf)
            out.emplace_back(value, mass.value() / evidenceMass.value());
        return out;
    }

  private:
    struct Leaf
    {
        /** Borrowed from the leaf node's support storage (addLeaf). */
        const std::vector<double>* probabilities;
    };

    /**
     * One lowered node: its sorted leaf dependencies and a dense
     * table of size `states` (the product of those leaves' support
     * sizes, leaf order = ascending id, first leaf least significant)
     * holding the node's value under each joint assignment.
     */
    struct Entry
    {
        std::vector<std::uint32_t> leaves;
        std::size_t states = 1;
        std::type_index type{typeid(void)};
        std::shared_ptr<const void> table;
    };

    std::size_t
    intern(const void* node, Entry entry)
    {
        if (entries_.empty()) {
            entries_.reserve(32);
            interned_.reserve(32);
        }
        entries_.push_back(std::move(entry));
        const std::size_t index = entries_.size() - 1;
        interned_.emplace_back(node, index);
        return index;
    }

    template <typename T>
    const Entry&
    checked(std::size_t entry) const
    {
        const Entry& e = entries_.at(entry);
        UNCERTAIN_REQUIRE(e.type == std::type_index(typeid(T)),
                          "exact table queried at the wrong type");
        return e;
    }

    template <typename T>
    const std::vector<T>&
    table(std::size_t entry) const
    {
        return *std::static_pointer_cast<const std::vector<T>>(
            checked<T>(entry).table);
    }

    static std::vector<std::uint32_t>
    unionLeaves(const std::vector<std::uint32_t>& a,
                const std::vector<std::uint32_t>& b)
    {
        std::vector<std::uint32_t> out;
        out.reserve(a.size() + b.size());
        std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                       std::back_inserter(out));
        return out;
    }

    /** Product of support sizes; refuses past the configured bound. */
    std::size_t
    checkStates(const std::vector<std::uint32_t>& leaves) const
    {
        std::size_t states = 1;
        for (std::uint32_t leaf : leaves) {
            const std::size_t size =
                leaves_[leaf].probabilities->size();
            if (size > 0 && states > limits_.maxJointStates / size) {
                refuse("joint support exceeds the enumeration bound "
                       "of "
                       + std::to_string(limits_.maxJointStates)
                       + " states");
            }
            states *= size;
        }
        return states;
    }

    /** Π Pr[leaf k = digits[k]] over @p leaves. */
    double
    jointWeight(const std::vector<std::uint32_t>& leaves,
                const std::size_t* digits) const
    {
        double w = 1.0;
        for (std::size_t k = 0; k < leaves.size(); ++k)
            w *= (*leaves_[leaves[k]].probabilities)[digits[k]];
        return w;
    }

    /**
     * Mixed-radix odometer over the joint assignments of @p leaves.
     * For each state, @p fn receives the joint index, one table index
     * per operand entry (maintained incrementally via per-operand
     * strides — a leaf absent from an operand contributes stride 0),
     * and the per-leaf digit vector for weight computation.
     *
     * Uses the builder's scratch buffers: the builder is single-
     * threaded by contract (like SampleContext), and lowering a graph
     * visits thousands of joint states across dozens of nodes, so the
     * conditional fast path cannot afford per-node allocations.
     */
    template <typename Fn>
    void
    forEachJoint(const std::vector<std::uint32_t>& leaves,
                 const Entry* const* operands, std::size_t numOps,
                 Fn&& fn) const
    {
        const std::size_t numLeaves = leaves.size();

        auto& sizes = scratch_.sizes;
        sizes.resize(numLeaves);
        std::size_t total = 1;
        for (std::size_t k = 0; k < numLeaves; ++k) {
            sizes[k] = leaves_[leaves[k]].probabilities->size();
            total *= sizes[k];
        }

        // strides[o * numLeaves + k]: step of operand o's table index
        // when leaf k's digit advances by one.
        auto& strides = scratch_.strides;
        strides.assign(numOps * numLeaves, 0);
        for (std::size_t o = 0; o < numOps; ++o) {
            std::size_t stride = 1;
            for (std::uint32_t leaf : operands[o]->leaves) {
                const auto pos = static_cast<std::size_t>(
                    std::lower_bound(leaves.begin(), leaves.end(),
                                     leaf)
                    - leaves.begin());
                UNCERTAIN_ASSERT(pos < numLeaves
                                     && leaves[pos] == leaf,
                                 "operand leaf missing from joint "
                                 "leaf set");
                strides[o * numLeaves + pos] = stride;
                stride *= leaves_[leaf].probabilities->size();
            }
        }

        auto& digits = scratch_.digits;
        auto& idx = scratch_.idx;
        digits.assign(numLeaves, 0);
        idx.assign(numOps, 0);
        for (std::size_t joint = 0;;) {
            fn(joint, idx.data(), digits.data());
            if (++joint == total)
                break;
            for (std::size_t k = 0;; ++k) {
                ++digits[k];
                for (std::size_t o = 0; o < numOps; ++o)
                    idx[o] += strides[o * numLeaves + k];
                if (digits[k] < sizes[k])
                    break;
                digits[k] = 0;
                for (std::size_t o = 0; o < numOps; ++o)
                    idx[o] -= strides[o * numLeaves + k] * sizes[k];
            }
        }
    }

    /**
     * Build an inner-node entry: union the operand leaf sets, bound
     * the joint state count, and fill the table by evaluating
     * @p compute (which reads the operand tables at the incrementally
     * maintained indices) at every joint assignment. Fan-in is at
     * most 3 (ternary nodes).
     */
    template <typename R, typename Compute>
    std::size_t
    emit(const void* node, const std::size_t* operandEntries,
         std::size_t numOps, Compute&& compute)
    {
        UNCERTAIN_ASSERT(numOps >= 1 && numOps <= 3,
                         "emit supports fan-in 1..3");
        const Entry* operands[3] = {nullptr, nullptr, nullptr};
        auto& leaves = scratch_.unionAcc;
        leaves.clear();
        for (std::size_t i = 0; i < numOps; ++i) {
            const Entry& e = entries_[operandEntries[i]];
            mergeLeaves(leaves, e.leaves);
            operands[i] = &e;
        }
        const std::size_t states = checkStates(leaves);

        auto table = std::make_shared<std::vector<R>>(states);
        forEachJoint(leaves, operands, numOps,
                     [&](std::size_t joint, const std::size_t* idx,
                         const std::size_t*) {
                         (*table)[joint] = compute(idx);
                     });

        Entry entry;
        entry.leaves.assign(leaves.begin(), leaves.end());
        entry.states = states;
        entry.type = std::type_index(typeid(R));
        entry.table = std::move(table);
        return intern(node, std::move(entry));
    }

    /** In-place sorted union: @p into = union(into, more). */
    void
    mergeLeaves(std::vector<std::uint32_t>& into,
                const std::vector<std::uint32_t>& more) const
    {
        if (into.empty()) {
            into.assign(more.begin(), more.end());
            return;
        }
        auto& merged = scratch_.unionTmp;
        merged.clear();
        std::set_union(into.begin(), into.end(), more.begin(),
                       more.end(), std::back_inserter(merged));
        into.swap(merged);
    }

    /** Reusable buffers for the odometer and leaf-set unions. */
    struct Scratch
    {
        std::vector<std::size_t> sizes;
        std::vector<std::size_t> strides;
        std::vector<std::size_t> digits;
        std::vector<std::size_t> idx;
        std::vector<std::uint32_t> unionAcc;
        std::vector<std::uint32_t> unionTmp;
    };

    EnumerationLimits limits_;
    std::vector<Leaf> leaves_;
    std::vector<Entry> entries_;
    std::vector<std::pair<const void*, std::size_t>> interned_;
    mutable Scratch scratch_;
};

} // namespace exact
} // namespace uncertain

#endif // UNCERTAIN_EXACT_ENUMERATION_HPP
