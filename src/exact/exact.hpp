/**
 * @file
 * Public API of the exact enumeration backend.
 *
 * For graphs whose leaves all declare finite support (built with
 * core::fromFiniteSupport / core::bernoulliEvent, discrete
 * distributions through core::fromDistribution, or the Life sensors'
 * exact leaves), these functions answer in closed form what the
 * stochastic engines estimate:
 *
 *   exact::supports(u)          — will the backend accept the graph?
 *   exact::pmf(u)               — the full probability mass function
 *   exact::probability(event)   — Pr[event] exactly
 *   exact::evaluate / pr        — the conditional, no samples drawn
 *   exact::expectedValue(u)     — E[u] exactly
 *   exact::conditioned(t, ev)   — pmf of t given boolean evidence
 *
 * Unsupported graphs throw exact::Unsupported (query() reports the
 * reason without throwing). Everything here is also the ground-truth
 * oracle for the engine conformance suites in tests/exact.
 */

#ifndef UNCERTAIN_EXACT_EXACT_HPP
#define UNCERTAIN_EXACT_EXACT_HPP

#include <cmath>
#include <concepts>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/conditional.hpp"
#include "core/uncertain.hpp"
#include "exact/enumeration.hpp"

namespace uncertain {
namespace exact {

/**
 * A computed probability mass function: (value, probability) pairs
 * sorted by value. Probabilities are the raw joint-weight sums — not
 * re-normalized — so mass() exposes the enumeration round-off (it
 * must equal 1 within ~1e-12 for any accepted graph).
 */
template <typename T>
struct Pmf
{
    std::vector<std::pair<T, double>> entries;

    /** Total probability mass (Kahan-summed). */
    double
    mass() const
    {
        detail::KahanSum sum;
        for (const auto& [value, p] : entries)
            sum.add(p);
        return sum.value();
    }

    /** Pr[X == value]; 0 when the value is not in the support. */
    double
    probabilityOf(const T& value) const
    {
        for (const auto& [v, p] : entries) {
            if (v == value)
                return p;
        }
        return 0.0;
    }

    /** E[X] for arithmetic supports. */
    double
    expectedValue() const
        requires std::convertible_to<T, double>
    {
        detail::KahanSum sum;
        for (const auto& [value, p] : entries)
            sum.add(static_cast<double>(value) * p);
        return sum.value();
    }

    /** Var[X] for arithmetic supports. */
    double
    variance() const
        requires std::convertible_to<T, double>
    {
        const double mean = expectedValue();
        detail::KahanSum sum;
        for (const auto& [value, p] : entries) {
            const double d = static_cast<double>(value) - mean;
            sum.add(d * d * p);
        }
        return sum.value();
    }

    /** sqrt(variance()). */
    double
    stddev() const
        requires std::convertible_to<T, double>
    {
        return std::sqrt(variance());
    }
};

/** Outcome of asking whether the backend accepts a graph. */
struct Supportability
{
    bool supported = false;
    /** Refusal reason when not supported. */
    std::string reason;
    /** Distinct stochastic leaves in the graph (when supported). */
    std::size_t leaves = 0;
    /** Joint states the root's table spans (when supported). */
    std::size_t states = 0;
};

/**
 * Probe @p u against the backend: lowers the whole graph and reports
 * acceptance, the refusal reason, and the enumeration size.
 */
template <typename T>
Supportability
query(const Uncertain<T>& u, const EnumerationLimits& limits = {})
{
    Supportability result;
    try {
        ExactBuilder builder(limits);
        const std::size_t root = u.node()->lowerExact(builder);
        result.supported = true;
        result.leaves = builder.leafCount();
        result.states = builder.states(root);
    } catch (const Unsupported& refusal) {
        result.reason = refusal.reason();
    }
    return result;
}

/** Does the backend accept @p u's graph under @p limits? */
template <typename T>
bool
supports(const Uncertain<T>& u, const EnumerationLimits& limits = {})
{
    return query(u, limits).supported;
}

/**
 * The exact pmf of @p u. Throws Unsupported when the graph has
 * continuous/opaque leaves or exceeds @p limits.
 */
template <typename T>
Pmf<T>
pmf(const Uncertain<T>& u, const EnumerationLimits& limits = {})
{
    ExactBuilder builder(limits);
    const std::size_t root = u.node()->lowerExact(builder);
    return Pmf<T>{builder.distribution<T>(root)};
}

/** Pr[event] exactly. Throws Unsupported on refusal. */
inline double
probability(const Uncertain<bool>& event,
            const EnumerationLimits& limits = {})
{
    ExactBuilder builder(limits);
    const std::size_t root = event.node()->lowerExact(builder);
    return builder.eventProbability(root);
}

/** E[u] exactly. Throws Unsupported on refusal. */
template <typename T>
double
expectedValue(const Uncertain<T>& u,
              const EnumerationLimits& limits = {})
    requires std::convertible_to<T, double>
{
    return pmf(u, limits).expectedValue();
}

/**
 * The conditional "Pr[event] > threshold" answered in closed form:
 * same ConditionalResult shape as the sampling engines, with
 * samplesUsed always 0 and estimate the exact probability. Throws
 * Unsupported on refusal (use Uncertain::evaluate for automatic
 * fallback to the sequential test).
 */
inline core::ConditionalResult
evaluate(const Uncertain<bool>& event, double threshold,
         const EnumerationLimits& limits = {})
{
    UNCERTAIN_REQUIRE(threshold > 0.0 && threshold < 1.0,
                      "conditional threshold must be in (0, 1)");
    const double p = probability(event, limits);
    ++core::evalStats().conditionals;
    const auto decision = p > threshold
                              ? stats::TestDecision::AcceptAlternative
                              : stats::TestDecision::AcceptNull;
    return {decision, p, 0};
}

/** The boolean conditional, exactly. Throws Unsupported on refusal. */
inline bool
pr(const Uncertain<bool>& event, double threshold = 0.5,
   const EnumerationLimits& limits = {})
{
    return evaluate(event, threshold, limits).toBool();
}

/**
 * Discrete conditioning — the closed form of the sampling engines'
 * reweight: the pmf of @p target given that @p evidence is true,
 * with leaves shared between the two graphs kept joint (evidence
 * about a shared leaf propagates to the target, per the paper's
 * inference semantics). Throws Unsupported on refusal and Error when
 * Pr[evidence] == 0.
 */
template <typename T>
Pmf<T>
conditioned(const Uncertain<T>& target,
            const Uncertain<bool>& evidence,
            const EnumerationLimits& limits = {})
{
    ExactBuilder builder(limits);
    const std::size_t targetRoot = target.node()->lowerExact(builder);
    const std::size_t evidenceRoot =
        evidence.node()->lowerExact(builder);
    return Pmf<T>{builder.conditioned<T>(targetRoot, evidenceRoot)};
}

} // namespace exact
} // namespace uncertain

#endif // UNCERTAIN_EXACT_EXACT_HPP
