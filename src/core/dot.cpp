#include "core/dot.hpp"

#include <sstream>
#include <unordered_map>
#include <vector>

namespace uncertain {
namespace core {

namespace {

std::string
escapeLabel(const std::string& label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
toDot(const GraphNode& root)
{
    std::unordered_map<const GraphNode*, int> ids;
    std::vector<const GraphNode*> order;
    std::vector<const GraphNode*> stack{&root};
    while (!stack.empty()) {
        const GraphNode* node = stack.back();
        stack.pop_back();
        if (ids.count(node))
            continue;
        ids.emplace(node, static_cast<int>(order.size()));
        order.push_back(node);
        for (const auto& child : node->children())
            stack.push_back(child.get());
    }

    std::ostringstream out;
    out << "digraph uncertain {\n"
        << "    rankdir=BT;\n"
        << "    node [fontname=\"monospace\"];\n";
    for (const GraphNode* node : order) {
        bool leaf = node->children().empty();
        out << "    n" << ids[node] << " [label=\""
            << escapeLabel(node->opName()) << "\""
            << (leaf ? ", style=filled, fillcolor=lightgray" : "")
            << "];\n";
    }
    // Edges point from operand to result, matching the paper's
    // bottom-up figures.
    for (const GraphNode* node : order) {
        for (const auto& child : node->children()) {
            out << "    n" << ids[child.get()] << " -> n" << ids[node]
                << ";\n";
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace core
} // namespace uncertain
