/**
 * @file
 * Lifted math functions over uncertain values.
 *
 * Anything expressible as a pure function of base values lifts into
 * the algebra as an inner node ("a lifted operator may have any
 * type", section 3.3). This header provides the <cmath> vocabulary
 * so application code can write uncertain::sqrt(speed) instead of
 * spelling out map() calls.
 */

#ifndef UNCERTAIN_CORE_FUNCTIONS_HPP
#define UNCERTAIN_CORE_FUNCTIONS_HPP

#include <algorithm>
#include <cmath>

#include "core/operators.hpp"
#include "core/uncertain.hpp"

namespace uncertain {

#define UNCERTAIN_DEFINE_UNARY_FN(fn)                                  \
    template <typename A>                                              \
        requires requires(A a) { std::fn(a); }                         \
    auto fn(const Uncertain<A>& a)                                     \
    {                                                                  \
        return a.map([](const A& x) { return std::fn(x); }, #fn);      \
    }

UNCERTAIN_DEFINE_UNARY_FN(sqrt)
UNCERTAIN_DEFINE_UNARY_FN(cbrt)
UNCERTAIN_DEFINE_UNARY_FN(exp)
UNCERTAIN_DEFINE_UNARY_FN(log)
UNCERTAIN_DEFINE_UNARY_FN(log2)
UNCERTAIN_DEFINE_UNARY_FN(log10)
UNCERTAIN_DEFINE_UNARY_FN(sin)
UNCERTAIN_DEFINE_UNARY_FN(cos)
UNCERTAIN_DEFINE_UNARY_FN(tan)
UNCERTAIN_DEFINE_UNARY_FN(tanh)
UNCERTAIN_DEFINE_UNARY_FN(floor)
UNCERTAIN_DEFINE_UNARY_FN(ceil)
UNCERTAIN_DEFINE_UNARY_FN(round)
UNCERTAIN_DEFINE_UNARY_FN(fabs)

#undef UNCERTAIN_DEFINE_UNARY_FN

/** |x| for any type with std::abs support. */
template <typename A>
    requires requires(A a) { std::abs(a); }
auto
abs(const Uncertain<A>& a)
{
    return a.map([](const A& x) { return std::abs(x); }, "abs");
}

/** x^y with an uncertain base and plain exponent. */
template <typename A>
    requires requires(A a, double e) { std::pow(a, e); }
auto
pow(const Uncertain<A>& a, double exponent)
{
    return a.map(
        [exponent](const A& x) { return std::pow(x, exponent); },
        "pow");
}

/** x^y with both operands uncertain. */
template <typename A, typename B>
    requires requires(A a, B b) { std::pow(a, b); }
auto
pow(const Uncertain<A>& a, const Uncertain<B>& b)
{
    return core::liftBinary(
        [](const A& x, const B& y) { return std::pow(x, y); }, a, b,
        "pow");
}

/** Per-sample minimum of two uncertain values. The ops::Min functor
 *  spells out std::min's (y < x) ? y : x selection so the SIMD
 *  backend can reproduce it with a compare + blend. */
template <typename A>
Uncertain<A>
min(const Uncertain<A>& a, const Uncertain<A>& b)
{
    return core::liftBinary(core::ops::Min{}, a, b, "min");
}

/** Per-sample maximum of two uncertain values (std::max semantics). */
template <typename A>
Uncertain<A>
max(const Uncertain<A>& a, const Uncertain<A>& b)
{
    return core::liftBinary(core::ops::Max{}, a, b, "max");
}

/** Per-sample clamp into [lo, hi]. */
template <typename A>
Uncertain<A>
clamp(const Uncertain<A>& a, A lo, A hi)
{
    return a.map(
        [lo, hi](const A& x) { return std::clamp(x, lo, hi); },
        "clamp");
}

/** The event lo <= a <= hi (one shared draw per pass). */
template <typename A>
Uncertain<bool>
between(const Uncertain<A>& a, A lo, A hi)
{
    return a.map(
        [lo, hi](const A& x) -> bool { return x >= lo && x <= hi; },
        "between");
}

/**
 * Per-sample selection: cond ? ifTrue : ifFalse, lifted as a single
 * ternary node. Unlike a host-language ?: (which would force the
 * condition through a conditional *now*), select keeps the branch
 * inside the network: each sampling pass draws the condition once —
 * shared with any other use of it — and takes that pass's branch.
 * Both branches are sampled every pass (a lifted function, not
 * short-circuit control flow). Fully supported by the exact backend.
 */
template <typename A>
Uncertain<A>
select(const Uncertain<bool>& cond, const Uncertain<A>& ifTrue,
       const Uncertain<A>& ifFalse)
{
    return core::liftTernary(core::ops::Select{}, cond, ifTrue,
                             ifFalse, "select");
}

/** select() with a plain false-branch value. */
template <typename A, core::NotUncertain B>
    requires std::convertible_to<B, A>
Uncertain<A>
select(const Uncertain<bool>& cond, const Uncertain<A>& ifTrue,
       const B& ifFalse)
{
    return select(cond, ifTrue, Uncertain<A>(static_cast<A>(ifFalse)));
}

/** select() with a plain true-branch value. */
template <typename A, core::NotUncertain B>
    requires std::convertible_to<B, A>
Uncertain<A>
select(const Uncertain<bool>& cond, const B& ifTrue,
       const Uncertain<A>& ifFalse)
{
    return select(cond, Uncertain<A>(static_cast<A>(ifTrue)), ifFalse);
}

/** select() between two plain values. */
template <typename A>
Uncertain<A>
select(const Uncertain<bool>& cond, const A& ifTrue, const A& ifFalse)
{
    return select(cond, Uncertain<A>(ifTrue), Uncertain<A>(ifFalse));
}

} // namespace uncertain

#endif // UNCERTAIN_CORE_FUNCTIONS_HPP
