/**
 * @file
 * Inspection utilities: Monte Carlo summaries of an uncertain value
 * for debugging, logging, and harness output. `print(Speed)` in the
 * paper becomes `describe(speed).toString()` here — a mean *with*
 * its spread and quantiles, so nobody mistakes the estimate for a
 * fact.
 */

#ifndef UNCERTAIN_CORE_INSPECT_HPP
#define UNCERTAIN_CORE_INSPECT_HPP

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/uncertain.hpp"
#include "stats/confidence.hpp"
#include "stats/summary.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace core {

/** Monte Carlo summary of a scalar uncertain value. */
struct Description
{
    std::size_t samples;
    double mean;
    double stddev;
    double min;
    double max;
    double q025; //!< 2.5th percentile
    double median;
    double q975; //!< 97.5th percentile
    /** 95% confidence interval for the *mean* estimate itself. */
    stats::Interval meanCi;

    /** One-line rendering: mean ± sd [95%: lo..hi]. */
    std::string toString() const;
};

/**
 * Summarize @p value from @p n samples. Requires n >= 16.
 */
template <typename T>
    requires std::convertible_to<T, double>
Description
describe(const Uncertain<T>& value, std::size_t n, Rng& rng)
{
    UNCERTAIN_REQUIRE(n >= 16, "describe requires n >= 16");
    std::vector<double> samples;
    samples.reserve(n);
    stats::OnlineSummary summary;
    SampleContext ctx(rng);
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0)
            ctx.newEpoch();
        double x = static_cast<double>(value.node()->sample(ctx));
        ++evalStats().rootSamples;
        samples.push_back(x);
        summary.add(x);
    }

    Description out;
    out.samples = n;
    out.mean = summary.mean();
    out.stddev = summary.stddev();
    out.min = summary.min();
    out.max = summary.max();
    out.q025 = stats::quantile(samples, 0.025);
    out.median = stats::quantile(samples, 0.5);
    out.q975 = stats::quantile(std::move(samples), 0.975);
    out.meanCi = stats::meanConfidenceInterval(summary);
    return out;
}

/** describe() with the thread's global generator. */
template <typename T>
    requires std::convertible_to<T, double>
Description
describe(const Uncertain<T>& value, std::size_t n = 2000)
{
    return describe(value, n, globalRng());
}

/**
 * The optimizer's report for @p value's batch plan: columns before
 * and after the passes, fused-kernel count, workspace footprint
 * (PlanStats in core/batch_plan.hpp). Goes through the sampler's
 * PlanCache, so inspecting a plan warms the cache the sampler will
 * hit. Benches print this under --verbose.
 */
template <typename T>
PlanStats
planStats(const Uncertain<T>& value, BatchSampler& sampler)
{
    return sampler.planFor(value.node())->stats();
}

/** planStats() against a throwaway sampler with @p options. */
template <typename T>
PlanStats
planStats(const Uncertain<T>& value, const PlanOptions& options = {})
{
    return BatchPlan::compile(value.node(), options)->stats();
}

/**
 * Execution counters of @p value's cached plan in @p sampler: blocks
 * run, steps dispatched, fused strips executed and how many of those
 * went through compiled JIT fragments or the SIMD kernels. Zero until
 * the plan has actually sampled (compiling does not execute).
 */
template <typename T>
PlanExecCounters
planExecCounters(const Uncertain<T>& value, BatchSampler& sampler)
{
    return sampler.planFor(value.node())->execCounters();
}

/**
 * One-line rendering of @p value's exact pmf when the enumeration
 * backend accepts its graph, or the refusal reason when it does not.
 * Unlike describe(), no sampling and no estimate: every digit printed
 * is a fact. Long supports are elided after @p maxEntries values.
 */
template <typename T>
    requires std::convertible_to<T, double>
std::string
exactReport(const Uncertain<T>& value,
            const exact::EnumerationLimits& limits = {},
            std::size_t maxEntries = 16)
{
    std::ostringstream out;
    exact::ExactBuilder builder(limits);
    try {
        const std::size_t root = value.node()->lowerExact(builder);
        const auto pmf = builder.distribution<T>(root);
        out << "exact pmf over " << pmf.size() << " values ("
            << builder.leafCount() << " leaves, "
            << builder.states(root) << " joint states):";
        std::size_t shown = 0;
        for (const auto& [v, p] : pmf) {
            if (shown++ == maxEntries) {
                out << " ...";
                break;
            }
            out << ' ' << static_cast<double>(v) << ':' << p;
        }
    } catch (const exact::Unsupported& refusal) {
        out << "exact: unsupported (" << refusal.reason() << ")";
    }
    return out.str();
}

/**
 * One-line rendering of a plan report plus the cache counters of the
 * sampler that produced it, for bench --verbose output.
 */
inline std::string
planReport(const PlanStats& stats, const PlanCacheStats& cache,
           std::size_t blockSize)
{
    std::ostringstream out;
    out << stats.toString() << "; peak workspace "
        << stats.peakWorkspaceBytes(blockSize) << " B (unoptimized "
        << stats.unoptimizedWorkspaceBytes(blockSize) << " B) @ block "
        << blockSize << "; cache hits " << cache.hits << " misses "
        << cache.misses << " evictions " << cache.evictions;
    return out.str();
}

/**
 * planReport() extended with the plan's execution counters — what the
 * interpreter actually ran, not just what the optimizer emitted.
 */
inline std::string
planReport(const PlanStats& stats, const PlanCacheStats& cache,
           std::size_t blockSize, const PlanExecCounters& exec)
{
    std::ostringstream out;
    out << planReport(stats, cache, blockSize) << "; executed "
        << exec.blocksExecuted << " blocks, " << exec.stepsDispatched
        << " steps dispatched, " << exec.stripsExecuted << " strips ("
        << exec.jitStripsExecuted << " jit, " << exec.simdStripsExecuted
        << " simd)";
    if (stats.jitFragments > 0) {
        // Process-wide fragment cache, not per-plan: compiled code is
        // shared across plans with the same strip signature.
        const auto frag = jit::fragmentCacheStats();
        out << "; jit fragment cache " << frag.size << " entries, "
            << frag.hits << " hits " << frag.misses << " misses "
            << frag.refusals << " refusals " << frag.evictions
            << " evictions";
    }
    return out.str();
}

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_INSPECT_HPP
