/**
 * @file
 * The fragment compiler of the plan-level JIT backend: turns one
 * fused elementwise run of a BatchPlan (a sequence of strip micro-ops
 * over columns, strip registers, and broadcast constants) into a
 * single straight-line native function covering a whole
 * kStripElems-element strip, replacing per-step kernel dispatch
 * entirely.
 *
 * Contract mirrors the SIMD kernel layer (core/simd_kernels.hpp): the
 * emitted code performs the same IEEE operation per element in the
 * same element order as the scalar interpreter strip — no FMA
 * contraction (none is ever emitted), compare+blend Min/Max, ordered
 * compares — so fragment output is bit-identical to both the scalar
 * and the SIMD strips. Processing per *pack* (2 or 4 elements) across
 * all ops, instead of per op across the strip, only reorders which
 * elements are computed when — the same argument that makes the
 * fusion pass bit-exact.
 *
 * Fragments are cached process-wide, keyed by the group's canonical
 * op/operand signature plus the codegen ISA and strip length, so
 * plans sharing a shape (across samplers and threads) compile once.
 * The cache is mutex-guarded and bounded.
 *
 * compileGroup() refuses — returning a null fragment — rather than
 * guess: unsupported op (anything outside the f64/i64/bool strip
 * vocabulary below, e.g. the int32 kernels), no usable vector ISA,
 * register pressure beyond the allocator, too many distinct columns,
 * executable memory unavailable, or a -DUNCERTAIN_JIT=OFF build. The
 * caller falls back to the SIMD/scalar strips; the interpreter
 * remains the always-available oracle.
 */

#ifndef UNCERTAIN_CORE_JIT_JIT_COMPILER_HPP
#define UNCERTAIN_CORE_JIT_JIT_COMPILER_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/jit/jit_buffer.hpp"

namespace uncertain {
namespace jit {

/**
 * Ops the emitter knows how to lower. One enumerator per (functor,
 * signature) pair of the strip IR; the signature is implied by the
 * name (F64 arithmetic, F64 ordered compares producing bool, I64
 * add/sub, logical ops over bools, f64 select).
 */
enum class Op : std::uint8_t
{
    AddF64,
    SubF64,
    MulF64,
    DivF64,
    MinF64, //!< (y < x) ? y : x — compare+blend, std::min semantics
    MaxF64, //!< (x < y) ? y : x — compare+blend, std::max semantics
    NegF64, //!< sign-bit xor: bit-exact for NaN and +-0
    LtF64,
    GtF64,
    LeF64,
    GeF64,
    EqF64,
    NeF64, //!< the only predicate true on NaN (unordered)
    AddI64,
    SubI64,
    AndBool,
    OrBool,
    NotBool,
    SelectF64, //!< (cond, x, y) -> cond ? x : y
};

/** Where one fragment operand lives. */
struct Operand
{
    enum class Kind : std::uint8_t
    {
        Column,  //!< workspace column; index = dense column slot
        Scratch, //!< strip register; index = scratch byte offset
        Const,   //!< broadcast constant; constBits = object bytes
    };

    Kind kind = Kind::Column;
    std::uint32_t index = 0;
    std::uint64_t constBits = 0;
};

/** One step of the group, with operands already slot-remapped. */
struct GroupStep
{
    Op op = Op::AddF64;
    std::array<Operand, 3> src{};
    std::uint8_t arity = 0;
    Operand dst{}; //!< Column or Scratch, never Const
};

/** Hard cap on distinct column slots per fragment (pointer table). */
constexpr std::size_t kMaxColumnSlots = 64;

/**
 * A sealed native function over one strip:
 *   fn(cols, base)
 * where cols[slot] is the raw storage pointer of that column slot and
 * base is the absolute element index of the strip's first element
 * (every column is addressed as cols[slot] + base * elemSize). The
 * function processes exactly the stripElems it was compiled for, so
 * callers run it only on full strips and hand partial tails to the
 * interpreter strips.
 */
class Fragment
{
  public:
    using Fn = void (*)(unsigned char* const* cols, std::size_t base);

    Fragment(std::unique_ptr<ExecBuffer> buffer)
        : buffer_(std::move(buffer))
    {}

    Fn
    fn() const
    {
        return reinterpret_cast<Fn>(
            const_cast<void*>(buffer_->entry()));
    }

    std::size_t codeBytes() const { return buffer_->codeBytes(); }

  private:
    std::unique_ptr<ExecBuffer> buffer_;
};

/** Outcome of one compileGroup call. */
struct CompileResult
{
    std::shared_ptr<const Fragment> fragment; //!< null on refusal
    bool cacheHit = false;       //!< served from the process-wide cache
    std::uint64_t compileNanos = 0; //!< actual emission time (0 on hit)
};

/** Process-wide fragment cache counters (tests, planReport). */
struct FragmentCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    //!< lookups that ran the emitter
    std::uint64_t refusals = 0;  //!< emitter declined (not cached)
    std::uint64_t evictions = 0;
    std::size_t size = 0;
};

/**
 * Can the JIT emit anything on this build/CPU right now? False on
 * non-x86-64, -DUNCERTAIN_JIT=OFF builds, setForceDisabled(true),
 * when the SIMD layer reports no usable vector unit (which covers
 * simd::setForceScalar and -DUNCERTAIN_SIMD=OFF builds — the JIT is
 * part of the vector execution story and obeys the same kill
 * switches), or when the one-time executable-memory probe failed.
 */
bool available();

/**
 * Process-wide kill switch, the JIT analog of simd::setForceScalar:
 * while true, available() is false and every compileGroup call
 * refuses. Used by the forced-fallback tests and the bench axes.
 */
void setForceDisabled(bool disabled);

/** Current state of the force-disable switch. */
bool forceDisabled();

/** Name of the ISA fragments are emitted for ("avx2", "sse2"); the
 *  emitter follows the *running CPU* (simd::detectedIsa), not the
 *  compiler flags — generated code carries its own encoding. Returns
 *  "none" when available() is false. */
const char* codegenIsaName();

/**
 * Compile @p steps (one fused run, operands slot-remapped so column
 * slots are dense appearance-order indices below @p columnSlots) into
 * a fragment processing @p stripElems elements per call. Serves the
 * process-wide cache first. Null fragment = refusal; see file header
 * for the refusal vocabulary.
 */
CompileResult compileGroup(const std::vector<GroupStep>& steps,
                           std::size_t columnSlots,
                           std::size_t stripElems);

/** Snapshot of the process-wide fragment cache counters. */
FragmentCacheStats fragmentCacheStats();

/** Drop every cached fragment (tests; live plans keep theirs alive). */
void clearFragmentCache();

} // namespace jit
} // namespace uncertain

#endif // UNCERTAIN_CORE_JIT_JIT_COMPILER_HPP
