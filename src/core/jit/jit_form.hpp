/**
 * @file
 * Compile-time mapping from named operator functors (core/ops.hpp) to
 * the plan-level JIT's op vocabulary (core/jit/jit_compiler.hpp) —
 * the JIT analog of simd::VectorForm. batch_plan.hpp consults
 * OpFor<F, R, As...> while building a step: when the specialization
 * exists, the step record carries the jit::Op so a fused group made
 * entirely of such steps can be compiled into one native fragment.
 *
 * The table deliberately covers only what the emitter can lower with
 * bit-identical semantics: f64 arithmetic and ordered compares, i64
 * add/sub, bool logic, and f64 select. int32 ops are intentionally
 * absent — a group containing one refuses to JIT and falls back to
 * the SIMD/scalar strips, which the forced-fallback tests rely on.
 */

#ifndef UNCERTAIN_CORE_JIT_JIT_FORM_HPP
#define UNCERTAIN_CORE_JIT_JIT_FORM_HPP

#include <cstdint>

#include "core/jit/jit_compiler.hpp"
#include "core/ops.hpp"

namespace uncertain {
namespace jit {

/** OpFor<F, R, As...>: does functor F applied to operand base types
 *  As... producing base type R have a JIT lowering? */
template <typename F, typename R, typename... As>
struct OpFor
{
    static constexpr bool available = false;
};

#define UNCERTAIN_JIT_OP(Functor, OpName, R, ...)                         \
    template <>                                                           \
    struct OpFor<core::ops::Functor, R, __VA_ARGS__>                      \
    {                                                                     \
        static constexpr bool available = true;                           \
        static constexpr Op op = Op::OpName;                              \
    }

UNCERTAIN_JIT_OP(Add, AddF64, double, double, double);
UNCERTAIN_JIT_OP(Sub, SubF64, double, double, double);
UNCERTAIN_JIT_OP(Mul, MulF64, double, double, double);
UNCERTAIN_JIT_OP(Div, DivF64, double, double, double);
UNCERTAIN_JIT_OP(Min, MinF64, double, double, double);
UNCERTAIN_JIT_OP(Max, MaxF64, double, double, double);
UNCERTAIN_JIT_OP(Neg, NegF64, double, double);

UNCERTAIN_JIT_OP(Lt, LtF64, bool, double, double);
UNCERTAIN_JIT_OP(Gt, GtF64, bool, double, double);
UNCERTAIN_JIT_OP(Le, LeF64, bool, double, double);
UNCERTAIN_JIT_OP(Ge, GeF64, bool, double, double);
UNCERTAIN_JIT_OP(Eq, EqF64, bool, double, double);
UNCERTAIN_JIT_OP(Ne, NeF64, bool, double, double);

UNCERTAIN_JIT_OP(Add, AddI64, std::int64_t, std::int64_t, std::int64_t);
UNCERTAIN_JIT_OP(Sub, SubI64, std::int64_t, std::int64_t, std::int64_t);

UNCERTAIN_JIT_OP(And, AndBool, bool, bool, bool);
UNCERTAIN_JIT_OP(Or, OrBool, bool, bool, bool);
UNCERTAIN_JIT_OP(Not, NotBool, bool, bool);

UNCERTAIN_JIT_OP(Select, SelectF64, double, bool, double, double);

#undef UNCERTAIN_JIT_OP

} // namespace jit
} // namespace uncertain

#endif // UNCERTAIN_CORE_JIT_JIT_FORM_HPP
