/**
 * @file
 * W^X executable code buffer for the plan-level JIT backend.
 *
 * A fragment's machine code is assembled into ordinary heap memory
 * first; seal() then maps fresh pages (PROT_READ | PROT_WRITE),
 * copies the code in, and flips the mapping to PROT_READ | PROT_EXEC
 * before anyone can jump to it. The pages are never writable and
 * executable at the same time (W^X), and they stay read+execute for
 * the buffer's whole lifetime — fragments are immutable, so there is
 * no patching after sealing.
 *
 * Any failure (no mmap on this platform, mmap or mprotect refusing —
 * e.g. a hardened kernel denying anonymous executable mappings)
 * returns null, which the compiler reports as a refusal; the plan
 * then falls back to the SIMD/scalar interpreter strips. JIT is an
 * optimization, never a requirement.
 */

#ifndef UNCERTAIN_CORE_JIT_JIT_BUFFER_HPP
#define UNCERTAIN_CORE_JIT_JIT_BUFFER_HPP

#include <cstddef>
#include <cstdint>
#include <memory>

namespace uncertain {
namespace jit {

/** An immutable read+execute mapping holding one sealed fragment. */
class ExecBuffer
{
  public:
    ~ExecBuffer();
    ExecBuffer(const ExecBuffer&) = delete;
    ExecBuffer& operator=(const ExecBuffer&) = delete;

    /**
     * Map, copy @p size bytes of @p code, and seal read+execute.
     * Returns null if executable memory cannot be obtained (platform
     * without mmap, mmap/mprotect failure, empty code).
     */
    static std::unique_ptr<ExecBuffer> seal(const std::uint8_t* code,
                                            std::size_t size);

    /** Entry point of the sealed code (the first byte). */
    const void* entry() const { return mem_; }

    /** Bytes of machine code sealed (not the page-rounded mapping). */
    std::size_t codeBytes() const { return codeBytes_; }

  private:
    ExecBuffer(void* mem, std::size_t mapped, std::size_t codeBytes)
        : mem_(mem), mapped_(mapped), codeBytes_(codeBytes)
    {}

    void* mem_ = nullptr;
    std::size_t mapped_ = 0; //!< page-rounded mapping size
    std::size_t codeBytes_ = 0;
};

} // namespace jit
} // namespace uncertain

#endif // UNCERTAIN_CORE_JIT_JIT_BUFFER_HPP
