#include "core/jit/jit_buffer.hpp"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define UNCERTAIN_JIT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define UNCERTAIN_JIT_HAVE_MMAP 0
#endif

namespace uncertain {
namespace jit {

ExecBuffer::~ExecBuffer()
{
#if UNCERTAIN_JIT_HAVE_MMAP
    if (mem_ != nullptr)
        ::munmap(mem_, mapped_);
#endif
}

std::unique_ptr<ExecBuffer>
ExecBuffer::seal(const std::uint8_t* code, std::size_t size)
{
#if UNCERTAIN_JIT_HAVE_MMAP
    if (code == nullptr || size == 0)
        return nullptr;
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0)
        return nullptr;
    const std::size_t pageSize = static_cast<std::size_t>(page);
    const std::size_t mapped =
        (size + pageSize - 1) / pageSize * pageSize;
    // Write phase: the mapping is never executable while writable.
    void* mem = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED)
        return nullptr;
    std::memcpy(mem, code, size);
    // Execute phase: drop write before the first call ever happens.
    if (::mprotect(mem, mapped, PROT_READ | PROT_EXEC) != 0) {
        ::munmap(mem, mapped);
        return nullptr;
    }
    return std::unique_ptr<ExecBuffer>(
        new ExecBuffer(mem, mapped, size));
#else
    (void)code;
    (void)size;
    return nullptr;
#endif
}

} // namespace jit
} // namespace uncertain
