#include "core/jit/jit_compiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/jit/jit_assembler.hpp"
#include "core/simd_kernels.hpp"

namespace uncertain {
namespace jit {

namespace {

// Fragment ABI (System V x86-64):
//   void fn(unsigned char* const* cols /* rdi */, size_t base /* rsi */)
//
// Register roles inside a fragment:
//   RDI  column pointer table (never clobbered)
//   RCX  element index, runs base .. base + stripElems
//   RSI  loop limit (base + stripElems)
//   RAX, RDX  scalar temps (const materialization, bool byte traffic)
//   R11  base of a column whose slot did not get a pinned register
//   R8, R9, R10, RBX, R12..R15  pinned bases of the first 8 column slots
//
// Vector registers: 0..11 hold pinned broadcast constants (low numbers)
// and live intermediate values (the strip IR's scratch offsets mapped
// to registers — scratch values never touch memory, which is the
// whole perf story). 12..15 are per-step temporaries: T0..T2 receive
// column loads for source positions 0..2, T3 is the compute register
// for column destinations and the blend-mask scratch.
//
// Each loop iteration advances `interleave_` element-quads at once,
// with every step emitted once per quad-lane back to back and each
// lane's intermediates in its own registers. A fused group is
// typically one dependent chain per element; emitted serially the
// out-of-order scheduler sees only that chain's stalled ops and the
// loop runs at FP *latency* (~4 cycles/step), not throughput.
// Interleaving K independent chains instruction by instruction keeps
// K ready ops in every scheduler window (measured 1.5x on the
// depth-64 chain at K=4). K is bounded by register pressure — the
// per-lane live-scratch maximum times K plus the pinned constants
// must fit the 12-register pool — never by step count.
constexpr int kTemp0 = 12;
constexpr int kTempEnd = 16;
constexpr int kPoolSize = 12;
constexpr int kPins[8] = {R8, R9, R10, RBX, R12, R13, R14, R15};
constexpr int kFirstCalleeSavedPin = 3; //!< kPins[3..] need push/pop

enum class Elem : std::uint8_t
{
    F64,
    I64,
    Bool,
};

struct OpSig
{
    Elem res = Elem::F64;
    std::array<Elem, 3> args{};
    std::uint8_t arity = 0;
};

bool
sigOf(Op op, OpSig& out)
{
    const Elem F = Elem::F64;
    const Elem I = Elem::I64;
    const Elem B = Elem::Bool;
    switch (op) {
        case Op::AddF64:
        case Op::SubF64:
        case Op::MulF64:
        case Op::DivF64:
        case Op::MinF64:
        case Op::MaxF64:
            out = {F, {F, F, F}, 2};
            return true;
        case Op::NegF64:
            out = {F, {F, F, F}, 1};
            return true;
        case Op::LtF64:
        case Op::GtF64:
        case Op::LeF64:
        case Op::GeF64:
        case Op::EqF64:
        case Op::NeF64:
            out = {B, {F, F, F}, 2};
            return true;
        case Op::AddI64:
        case Op::SubI64:
            out = {I, {I, I, I}, 2};
            return true;
        case Op::AndBool:
        case Op::OrBool:
            out = {B, {B, B, B}, 2};
            return true;
        case Op::NotBool:
            out = {B, {B, B, B}, 1};
            return true;
        case Op::SelectF64:
            out = {F, {B, F, F}, 3};
            return true;
    }
    return false;
}

/** Broadcast-lane bit pattern of a constant operand. Bool constants
 *  become canonical masks (the in-register bool representation). */
std::uint64_t
laneBits(const Operand& o, Elem e)
{
    if (e == Elem::Bool)
        return (o.constBits & 0xffu) != 0 ? ~std::uint64_t{0} : 0;
    return o.constBits;
}

int
elemBytes(Elem e)
{
    return e == Elem::Bool ? 1 : 8;
}

constexpr std::uint64_t kSignMask = 0x8000000000000000ull;

class GroupEmitter
{
  public:
    GroupEmitter(const std::vector<GroupStep>& steps,
                 std::size_t columnSlots, std::size_t stripElems,
                 bool avx)
        : steps_(steps), columnSlots_(columnSlots),
          stripElems_(stripElems), avx_(avx), W_(avx ? 4 : 2)
    {}

    /** Analyze + emit; false = refusal (nothing usable emitted). */
    bool
    emit()
    {
        if (!analyze())
            return false;
        chooseInterleave();
        emitPrologue();
        const std::size_t top = a_.here();
        emitBody();
        a_.addRImm32(RCX,
                     static_cast<std::int32_t>(W_ * interleave_));
        a_.cmpRR(RCX, RSI);
        a_.jbTo(top);
        emitEpilogue();
        return true;
    }

    const std::vector<std::uint8_t>& code() const { return a_.code(); }

  private:
    // ---- analysis ----------------------------------------------------

    bool
    analyze()
    {
        if (steps_.empty() || columnSlots_ > kMaxColumnSlots)
            return false;
        if (stripElems_ == 0
            || stripElems_ % static_cast<std::size_t>(W_) != 0)
            return false;
        if (stripElems_
            > static_cast<std::size_t>(
                std::numeric_limits<std::int32_t>::max()))
            return false;
        sigs_.resize(steps_.size());
        std::set<std::uint32_t> defined;
        bool needZero = false;
        for (std::size_t k = 0; k < steps_.size(); ++k) {
            const GroupStep& s = steps_[k];
            OpSig& g = sigs_[k];
            if (!sigOf(s.op, g))
                return false;
            if (s.arity != g.arity)
                return false;
            for (unsigned i = 0; i < g.arity; ++i) {
                const Operand& o = s.src[i];
                const Elem e = g.args[i];
                switch (o.kind) {
                    case Operand::Kind::Column:
                        if (o.index >= columnSlots_)
                            return false;
                        if (e == Elem::Bool && avx_)
                            needZero = true;
                        break;
                    case Operand::Kind::Scratch:
                        if (defined.count(o.index) == 0)
                            return false; // reads a value the group never wrote
                        lastRef_[o.index] = k;
                        break;
                    case Operand::Kind::Const:
                        internConst(laneBits(o, e));
                        break;
                }
            }
            if (s.dst.kind == Operand::Kind::Const)
                return false;
            if (s.dst.kind == Operand::Kind::Column
                && s.dst.index >= columnSlots_)
                return false;
            if (s.dst.kind == Operand::Kind::Scratch) {
                defined.insert(s.dst.index);
                lastRef_[s.dst.index] = k;
            }
            if (s.op == Op::NegF64)
                internConst(kSignMask);
            if (s.op == Op::NotBool)
                internConst(~std::uint64_t{0});
        }
        if (needZero)
            internConst(0);
        if (constRegs_.size() > static_cast<std::size_t>(kPoolSize))
            return false;

        // Dry-run the scratch-offset -> vector-register binding so
        // emission can never run out of registers halfway through.
        // A binding lives from the offset's first definition to its
        // last reference; an overwrite before that reuses the same
        // register (the plan recycles offsets only after last use, so
        // the old value is dead by then).
        std::set<std::uint32_t> bound;
        std::size_t live = 0;
        maxLiveScratch_ = 0;
        for (std::size_t k = 0; k < steps_.size(); ++k) {
            const GroupStep& s = steps_[k];
            if (s.dst.kind == Operand::Kind::Scratch
                && bound.insert(s.dst.index).second) {
                ++live;
                maxLiveScratch_ = std::max(maxLiveScratch_, live);
            }
            auto releaseIfDead = [&](const Operand& o) {
                if (o.kind != Operand::Kind::Scratch)
                    return;
                if (lastRef_.at(o.index) == k && bound.erase(o.index))
                    --live;
            };
            for (unsigned i = 0; i < s.arity; ++i)
                releaseIfDead(s.src[i]);
            releaseIfDead(s.dst);
        }
        return constRegs_.size() + maxLiveScratch_
               <= static_cast<std::size_t>(kPoolSize);
    }

    void
    internConst(std::uint64_t bits)
    {
        if (constRegs_.count(bits))
            return;
        const int reg = static_cast<int>(constRegs_.size());
        constRegs_[bits] = reg;
        constOrder_.push_back(bits);
    }

    void
    chooseInterleave()
    {
        const std::size_t consts = constRegs_.size();
        interleave_ = 4;
        while (interleave_ > 1
               && (consts + maxLiveScratch_ * interleave_
                       > static_cast<std::size_t>(kPoolSize)
                   || stripElems_
                              % static_cast<std::size_t>(W_
                                                         * interleave_)
                          != 0))
            interleave_ /= 2;
    }

    // ---- prologue / epilogue -----------------------------------------

    void
    emitPrologue()
    {
        const int pinned = static_cast<int>(
            std::min<std::size_t>(columnSlots_, 8));
        for (int i = kFirstCalleeSavedPin; i < pinned; ++i)
            a_.pushR(kPins[i]);
        for (std::uint64_t bits : constOrder_) {
            const int reg = constRegs_.at(bits);
            if (bits == 0) {
                if (avx_)
                    a_.vexRR(0x57, 1, 1, 0, 1, reg, reg, reg);
                else
                    a_.sseRR(0x57, reg, reg);
                continue;
            }
            a_.movRImm64(RAX, bits);
            if (avx_) {
                // vmovq xmm, rax; vbroadcastsd ymm, xmm
                a_.vexRR(0x6E, 1, 1, 1, 0, reg, 0, RAX);
                a_.vexRR(0x19, 2, 1, 0, 1, reg, 0, reg);
            } else {
                a_.movqXmmR64(reg, RAX);
                a_.sseRR(0x6C, reg, reg); // punpcklqdq self = splat
            }
        }
        for (int s = 0; s < pinned; ++s)
            a_.movRM(kPins[s],
                     Mem{RDI, -1, 1, static_cast<std::int32_t>(8 * s)});
        a_.movRR(RCX, RSI); // index = base
        a_.addRImm32(RSI, static_cast<std::int32_t>(stripElems_));
    }

    void
    emitEpilogue()
    {
        if (avx_)
            a_.vzeroupper();
        const int pinned = static_cast<int>(
            std::min<std::size_t>(columnSlots_, 8));
        for (int i = pinned - 1; i >= kFirstCalleeSavedPin; --i)
            a_.popR(kPins[i]);
        a_.ret();
    }

    // ---- the interleaved loop body -----------------------------------

    void
    emitBody()
    {
        scratchReg_.clear();
        freeRegs_.clear();
        for (int r = kPoolSize - 1;
             r >= static_cast<int>(constRegs_.size()); --r)
            freeRegs_.push_back(r);
        for (std::size_t k = 0; k < steps_.size(); ++k)
            for (unsigned u = 0; u < interleave_; ++u)
                emitStep(k, u);
    }

    /** Key for a scratch offset's register binding in quad-lane @p u —
     *  every lane carries its own copy of each live intermediate. */
    static std::uint64_t
    laneKey(std::uint32_t offset, unsigned u)
    {
        return (static_cast<std::uint64_t>(offset) << 3) | u;
    }

    void
    emitStep(std::size_t k, unsigned u)
    {
        const GroupStep& s = steps_[k];
        const OpSig& g = sigs_[k];
        int r[3] = {-1, -1, -1};
        for (unsigned i = 0; i < g.arity; ++i)
            r[i] = srcReg(s, g, i, u);
        int d;
        const bool dstColumn = s.dst.kind == Operand::Kind::Column;
        if (dstColumn) {
            d = pickTemp(r, g.arity);
        } else {
            auto it = scratchReg_.find(laneKey(s.dst.index, u));
            if (it != scratchReg_.end()) {
                d = it->second;
            } else {
                d = freeRegs_.back(); // analyze() proved non-empty
                freeRegs_.pop_back();
                scratchReg_.emplace(laneKey(s.dst.index, u), d);
            }
        }
        if (avx_)
            emitOpAvx(s.op, d, r);
        else
            emitOpSse(s.op, d, r);
        if (dstColumn)
            storeDst(s.dst.index, g.res, u, d);
        releaseAfter(k, u);
    }

    void
    releaseAfter(std::size_t k, unsigned u)
    {
        const GroupStep& s = steps_[k];
        auto release = [&](const Operand& o) {
            if (o.kind != Operand::Kind::Scratch)
                return;
            if (lastRef_.at(o.index) != k)
                return;
            auto it = scratchReg_.find(laneKey(o.index, u));
            if (it == scratchReg_.end())
                return;
            freeRegs_.push_back(it->second);
            scratchReg_.erase(it);
        };
        for (unsigned i = 0; i < s.arity; ++i)
            release(s.src[i]);
        release(s.dst);
    }

    // ---- operands ----------------------------------------------------

    /** Register holding source @p i, loading/widening columns into the
     *  per-position temp T0..T2. */
    int
    srcReg(const GroupStep& s, const OpSig& g, unsigned i, unsigned u)
    {
        const Operand& o = s.src[i];
        const Elem e = g.args[i];
        switch (o.kind) {
            case Operand::Kind::Const:
                return constRegs_.at(laneBits(o, e));
            case Operand::Kind::Scratch:
                return scratchReg_.at(laneKey(o.index, u));
            case Operand::Kind::Column:
                break;
        }
        const int t = kTemp0 + static_cast<int>(i);
        if (e == Elem::Bool)
            widenBool(t, o.index, u);
        else
            loadColumn(t, o.index, e, u);
        return t;
    }

    /** Compute register for a column destination: a temp not holding
     *  any of this step's sources (scanned high so T3 wins when the
     *  low temps carry loads). */
    int
    pickTemp(const int* r, unsigned arity) const
    {
        for (int t = kTempEnd - 1; t >= kTemp0; --t) {
            bool taken = false;
            for (unsigned i = 0; i < arity; ++i)
                taken = taken || r[i] == t;
            if (!taken)
                return t;
        }
        return kTempEnd - 1; // unreachable: <= 3 sources
    }

    /** A temp distinct from every register in @p used (helper for
     *  blend masks and the SSE2 and/andn sequences). */
    int
    pickHelper(std::initializer_list<int> used) const
    {
        for (int t = kTemp0; t < kTempEnd; ++t) {
            bool taken = false;
            for (int x : used)
                taken = taken || x == t;
            if (!taken)
                return t;
        }
        return kTemp0; // unreachable by construction (see callers)
    }

    /** Address of column @p slot at element rcx + dispElems. Slots
     *  past the pinned set go through R11, reloaded per access. */
    Mem
    colMem(std::uint32_t slot, Elem e, int dispElems)
    {
        const int scale = elemBytes(e);
        const std::int32_t disp = dispElems * scale;
        if (slot < 8)
            return Mem{kPins[slot], RCX, scale, disp};
        a_.movRM(R11,
                 Mem{RDI, -1, 1, static_cast<std::int32_t>(8 * slot)});
        return Mem{R11, RCX, scale, disp};
    }

    void
    loadColumn(int t, std::uint32_t slot, Elem e, unsigned u)
    {
        const Mem m = colMem(slot, e, static_cast<int>(u) * W_);
        if (avx_)
            a_.vexRM(0x10, 1, 1, 0, 1, t, 0, m); // vmovupd
        else
            a_.sseRM(0x10, t, m); // movupd
    }

    /** Load W bool bytes and widen to the canonical all-ones/all-zero
     *  lane masks. Signature-wise bools only appear in source
     *  positions 0/1, so the SSE2 helper temp t+1 stays in range. */
    void
    widenBool(int t, std::uint32_t slot, unsigned u)
    {
        const Mem m = colMem(slot, Elem::Bool,
                             static_cast<int>(u) * W_);
        if (avx_) {
            a_.vexRM(0x32, 2, 1, 0, 1, t, 0, m); // vpmovzxbq ymm, m32
            // mask = widened > 0
            a_.vexRR(0x37, 2, 1, 1, 1, t, t, constRegs_.at(0));
            return;
        }
        Mem m1 = m;
        m1.disp += 1;
        const int helper = t + 1;
        a_.movzxR32M8(RAX, m);
        a_.negR(RAX); // 1 -> all-ones, 0 -> 0
        a_.movqXmmR64(t, RAX);
        a_.movzxR32M8(RAX, m1);
        a_.negR(RAX);
        a_.movqXmmR64(helper, RAX);
        a_.sseRR(0x6C, t, helper); // punpcklqdq: t.hi = helper.lo
    }

    void
    storeDst(std::uint32_t slot, Elem e, unsigned u, int v)
    {
        if (e == Elem::Bool) {
            storeMask(slot, u, v);
            return;
        }
        const Mem m = colMem(slot, e, static_cast<int>(u) * W_);
        if (avx_)
            a_.vexRM(0x11, 1, 1, 0, 1, v, 0, m); // vmovupd store
        else
            a_.sseRM(0x11, v, m);
    }

    /** Canonical mask -> W bool bytes (exactly 0 or 1, matching the
     *  interpreter's stores byte for byte). */
    void
    storeMask(std::uint32_t slot, unsigned u, int v)
    {
        if (avx_)
            a_.vexRR(0x50, 1, 1, 0, 1, RAX, 0, v); // vmovmskpd
        else
            a_.sseRR(0x50, RAX, v); // movmskpd
        const Mem m = colMem(slot, Elem::Bool,
                             static_cast<int>(u) * W_);
        for (int k = 0; k < W_; ++k) {
            Mem mk = m;
            mk.disp += k;
            if (k + 1 < W_) {
                a_.movR32R32(RDX, RAX);
                a_.andR32Imm8(RDX, 1);
                a_.movM8R8(mk, RDX);
                a_.shrR32Imm8(RAX, 1);
            } else {
                a_.andR32Imm8(RAX, 1);
                a_.movM8R8(mk, RAX);
            }
        }
    }

    // ---- AVX2 op selection (non-destructive three-operand forms) -----

    void
    vbin(std::uint8_t opc, int d, int a, int b)
    {
        a_.vexRR(opc, 1, 1, 0, 1, d, a, b);
    }

    void
    emitOpAvx(Op op, int d, const int* r)
    {
        switch (op) {
            case Op::AddF64: vbin(0x58, d, r[0], r[1]); return;
            case Op::SubF64: vbin(0x5C, d, r[0], r[1]); return;
            case Op::MulF64: vbin(0x59, d, r[0], r[1]); return;
            case Op::DivF64: vbin(0x5E, d, r[0], r[1]); return;
            case Op::MinF64: {
                // (y < x) ? y : x — compare+blend, NaN/-0 like std::min
                const int m = pickHelper({d, r[0], r[1]});
                a_.vcmppd(m, r[1], r[0], 1);
                a_.vblendvpd(d, r[0], r[1], m);
                return;
            }
            case Op::MaxF64: {
                const int m = pickHelper({d, r[0], r[1]});
                a_.vcmppd(m, r[0], r[1], 1);
                a_.vblendvpd(d, r[0], r[1], m);
                return;
            }
            case Op::NegF64:
                vbin(0x57, d, r[0], constRegs_.at(kSignMask));
                return;
            case Op::LtF64: a_.vcmppd(d, r[0], r[1], 1); return;
            case Op::GtF64: a_.vcmppd(d, r[1], r[0], 1); return;
            case Op::LeF64: a_.vcmppd(d, r[0], r[1], 2); return;
            case Op::GeF64: a_.vcmppd(d, r[1], r[0], 2); return;
            case Op::EqF64: a_.vcmppd(d, r[0], r[1], 0); return;
            case Op::NeF64: a_.vcmppd(d, r[0], r[1], 4); return;
            case Op::AddI64: vbin(0xD4, d, r[0], r[1]); return;
            case Op::SubI64: vbin(0xFB, d, r[0], r[1]); return;
            case Op::AndBool: vbin(0x54, d, r[0], r[1]); return;
            case Op::OrBool: vbin(0x56, d, r[0], r[1]); return;
            case Op::NotBool:
                vbin(0x57, d, r[0],
                     constRegs_.at(~std::uint64_t{0}));
                return;
            case Op::SelectF64:
                // c ? x : y; blend picks src2 where the mask is set
                a_.vblendvpd(d, r[2], r[1], r[0]);
                return;
        }
    }

    // ---- SSE2 op selection (destructive two-operand forms) -----------
    // The register binding guarantees d is distinct from every source,
    // which every sequence below relies on.

    void
    mov(int d, int s) { a_.sseRR(0x28, d, s); } // movapd

    void
    bin(std::uint8_t opc, int d, int s) { a_.sseRR(opc, d, s); }

    void
    emitOpSse(Op op, int d, const int* r)
    {
        switch (op) {
            case Op::AddF64: mov(d, r[0]); bin(0x58, d, r[1]); return;
            case Op::SubF64: mov(d, r[0]); bin(0x5C, d, r[1]); return;
            case Op::MulF64: mov(d, r[0]); bin(0x59, d, r[1]); return;
            case Op::DivF64: mov(d, r[0]); bin(0x5E, d, r[1]); return;
            case Op::MinF64: {
                const int h = pickHelper({d, r[0], r[1]});
                mov(d, r[1]);
                a_.cmppd(d, r[0], 1); // mask = y < x
                mov(h, d);
                bin(0x54, d, r[1]);   // mask & y
                bin(0x55, h, r[0]);   // ~mask & x
                bin(0x56, d, h);
                return;
            }
            case Op::MaxF64: {
                const int h = pickHelper({d, r[0], r[1]});
                mov(d, r[0]);
                a_.cmppd(d, r[1], 1); // mask = x < y
                mov(h, d);
                bin(0x54, d, r[1]);   // mask & y
                bin(0x55, h, r[0]);   // ~mask & x
                bin(0x56, d, h);
                return;
            }
            case Op::NegF64:
                mov(d, r[0]);
                bin(0x57, d, constRegs_.at(kSignMask));
                return;
            case Op::LtF64: mov(d, r[0]); a_.cmppd(d, r[1], 1); return;
            case Op::GtF64: mov(d, r[1]); a_.cmppd(d, r[0], 1); return;
            case Op::LeF64: mov(d, r[0]); a_.cmppd(d, r[1], 2); return;
            case Op::GeF64: mov(d, r[1]); a_.cmppd(d, r[0], 2); return;
            case Op::EqF64: mov(d, r[0]); a_.cmppd(d, r[1], 0); return;
            case Op::NeF64: mov(d, r[0]); a_.cmppd(d, r[1], 4); return;
            case Op::AddI64: mov(d, r[0]); bin(0xD4, d, r[1]); return;
            case Op::SubI64: mov(d, r[0]); bin(0xFB, d, r[1]); return;
            case Op::AndBool: mov(d, r[0]); bin(0x54, d, r[1]); return;
            case Op::OrBool: mov(d, r[0]); bin(0x56, d, r[1]); return;
            case Op::NotBool:
                mov(d, r[0]);
                bin(0x57, d, constRegs_.at(~std::uint64_t{0}));
                return;
            case Op::SelectF64:
                // d = (c & x) | (~c & y)
                if (r[0] >= kTemp0) {
                    // c lives in a load temp: destroy it in place.
                    mov(d, r[0]);
                    bin(0x54, d, r[1]); // c & x
                    bin(0x55, r[0], r[2]); // ~c & y
                    bin(0x56, d, r[0]);
                } else {
                    const int h = pickHelper({d, r[0], r[1], r[2]});
                    mov(d, r[0]);
                    bin(0x54, d, r[1]);
                    mov(h, r[0]);
                    bin(0x55, h, r[2]);
                    bin(0x56, d, h);
                }
                return;
        }
    }

    const std::vector<GroupStep>& steps_;
    std::size_t columnSlots_;
    std::size_t stripElems_;
    bool avx_;
    int W_;
    unsigned interleave_ = 1;
    std::size_t maxLiveScratch_ = 0;
    Assembler a_;
    std::vector<OpSig> sigs_;
    std::map<std::uint32_t, std::size_t> lastRef_;
    std::map<std::uint64_t, int> constRegs_;
    std::vector<std::uint64_t> constOrder_;
    std::map<std::uint64_t, int> scratchReg_;
    std::vector<int> freeRegs_;
};

// ---- availability ----------------------------------------------------

std::atomic<bool> g_forceDisabled{false};

#if !defined(UNCERTAIN_JIT_DISABLED) && defined(__x86_64__)
bool
execProbe()
{
    // One-time end-to-end check that this process may actually map,
    // seal, and call native code (hardened kernels can refuse).
    static const bool ok = [] {
        Assembler a;
        a.ret();
        auto buf = ExecBuffer::seal(a.code().data(), a.code().size());
        if (!buf)
            return false;
        reinterpret_cast<void (*)()>(const_cast<void*>(buf->entry()))();
        return true;
    }();
    return ok;
}
#endif

bool
codegenAvx()
{
    return simd::detectedIsa() >= simd::Isa::Avx2;
}

// ---- process-wide fragment cache -------------------------------------

constexpr std::size_t kCacheCap = 256;

struct CacheState
{
    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const Fragment>>
        map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t refusals = 0;
    std::uint64_t evictions = 0;
};

CacheState&
cacheState()
{
    static CacheState s;
    return s;
}

std::string
cacheKey(const std::vector<GroupStep>& steps, std::size_t columnSlots,
         std::size_t stripElems, bool avx)
{
    std::string key;
    key.reserve(16 + steps.size() * 32);
    auto put8 = [&](std::uint8_t v) {
        key.push_back(static_cast<char>(v));
    };
    auto put32 = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            put8(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    auto put64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            put8(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put8(avx ? 2 : 1);
    put64(stripElems);
    put64(columnSlots);
    for (const GroupStep& s : steps) {
        put8(static_cast<std::uint8_t>(s.op));
        put8(s.arity);
        put8(static_cast<std::uint8_t>(s.dst.kind));
        put32(s.dst.index);
        for (unsigned i = 0; i < s.arity; ++i) {
            put8(static_cast<std::uint8_t>(s.src[i].kind));
            put32(s.src[i].index);
            put64(s.src[i].constBits);
        }
    }
    return key;
}

} // namespace

bool
available()
{
#if defined(UNCERTAIN_JIT_DISABLED) || !defined(__x86_64__)
    return false;
#else
    if (g_forceDisabled.load(std::memory_order_relaxed))
        return false;
    if (simd::activeIsa() == simd::Isa::Scalar)
        return false;
    return execProbe();
#endif
}

void
setForceDisabled(bool disabled)
{
    g_forceDisabled.store(disabled, std::memory_order_relaxed);
}

bool
forceDisabled()
{
    return g_forceDisabled.load(std::memory_order_relaxed);
}

const char*
codegenIsaName()
{
    if (!available())
        return "none";
    return codegenAvx() ? "avx2" : "sse2";
}

CompileResult
compileGroup(const std::vector<GroupStep>& steps,
             std::size_t columnSlots, std::size_t stripElems)
{
    CompileResult res;
    CacheState& c = cacheState();
    if (!available()) {
        std::lock_guard<std::mutex> lock(c.mu);
        ++c.refusals;
        return res;
    }
    const bool avx = codegenAvx();
    const std::string key = cacheKey(steps, columnSlots, stripElems,
                                     avx);
    std::lock_guard<std::mutex> lock(c.mu);
    auto it = c.map.find(key);
    if (it != c.map.end()) {
        ++c.hits;
        res.fragment = it->second;
        res.cacheHit = true;
        return res;
    }
    ++c.misses;
    const auto t0 = std::chrono::steady_clock::now();
    GroupEmitter em(steps, columnSlots, stripElems, avx);
    if (!em.emit()) {
        ++c.refusals;
        return res;
    }
    auto buf = ExecBuffer::seal(em.code().data(), em.code().size());
    if (!buf) {
        ++c.refusals;
        return res;
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.fragment = std::make_shared<const Fragment>(std::move(buf));
    res.compileNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (c.map.size() >= kCacheCap) {
        c.map.erase(c.map.begin());
        ++c.evictions;
    }
    c.map.emplace(key, res.fragment);
    return res;
}

FragmentCacheStats
fragmentCacheStats()
{
    CacheState& c = cacheState();
    std::lock_guard<std::mutex> lock(c.mu);
    FragmentCacheStats out;
    out.hits = c.hits;
    out.misses = c.misses;
    out.refusals = c.refusals;
    out.evictions = c.evictions;
    out.size = c.map.size();
    return out;
}

void
clearFragmentCache()
{
    CacheState& c = cacheState();
    std::lock_guard<std::mutex> lock(c.mu);
    c.map.clear();
}

} // namespace jit
} // namespace uncertain
