/**
 * @file
 * Minimal x86-64 assembler for the plan-level JIT: exactly the
 * instructions the fragment compiler emits, nothing more. Code is
 * assembled into a growable byte vector; the caller seals it into an
 * ExecBuffer afterwards (see jit_buffer.hpp for the W^X discipline).
 *
 * Two encodings are covered:
 *  - legacy SSE2 (66 0F xx), the x86-64 baseline the compat code
 *    path targets, and
 *  - 3-byte VEX (AVX/AVX2), used when the running CPU reports AVX2.
 *
 * The register mnemonics below are encoder numbers (RAX=0 ... R15=15,
 * and xmm/ymm registers use the same 0..15 numbering). Memory
 * operands are [base + index*scale + disp] with the usual ModRM/SIB
 * quirks handled internally (RSP/R12 force a SIB byte, RBP/R13 force
 * a displacement). The index register must never be RSP (the encoding
 * cannot express it); the compiler only ever indexes through RCX.
 */

#ifndef UNCERTAIN_CORE_JIT_JIT_ASSEMBLER_HPP
#define UNCERTAIN_CORE_JIT_JIT_ASSEMBLER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uncertain {
namespace jit {

/** Encoder numbers for the general-purpose registers. */
enum Gpr : int
{
    RAX = 0,
    RCX = 1,
    RDX = 2,
    RBX = 3,
    RSP = 4,
    RBP = 5,
    RSI = 6,
    RDI = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
};

/** [base + index*scale + disp]; index < 0 means "no index". */
struct Mem
{
    int base = RAX;
    int index = -1;
    int scale = 1; //!< 1, 2, 4, or 8 (ignored without an index)
    std::int32_t disp = 0;
};

class Assembler
{
  public:
    const std::vector<std::uint8_t>& code() const { return code_; }
    std::size_t here() const { return code_.size(); }

    // ---- general-purpose ---------------------------------------------

    void
    pushR(int r)
    {
        if (r >= 8)
            u8(0x41);
        u8(static_cast<std::uint8_t>(0x50 + (r & 7)));
    }

    void
    popR(int r)
    {
        if (r >= 8)
            u8(0x41);
        u8(static_cast<std::uint8_t>(0x58 + (r & 7)));
    }

    /** mov r64, imm64 */
    void
    movRImm64(int r, std::uint64_t imm)
    {
        u8(static_cast<std::uint8_t>(0x48 | ((r >> 3) & 1)));
        u8(static_cast<std::uint8_t>(0xB8 + (r & 7)));
        u64(imm);
    }

    /** mov r64, r64 */
    void
    movRR(int dst, int src)
    {
        rex(true, dst, -1, src);
        u8(0x8B);
        modrmReg(dst, src);
    }

    /** mov r32, r32 */
    void
    movR32R32(int dst, int src)
    {
        rex(false, dst, -1, src);
        u8(0x8B);
        modrmReg(dst, src);
    }

    /** mov r64, m64 */
    void
    movRM(int dst, const Mem& m)
    {
        rex(true, dst, m.index, m.base);
        u8(0x8B);
        modrmMem(dst, m);
    }

    /** movzx r32, m8 */
    void
    movzxR32M8(int dst, const Mem& m)
    {
        rex(false, dst, m.index, m.base);
        u8(0x0F);
        u8(0xB6);
        modrmMem(dst, m);
    }

    /** mov m8, r8 (low byte of @p src; use only RAX/RDX sources). */
    void
    movM8R8(const Mem& m, int src)
    {
        rex(false, src, m.index, m.base);
        u8(0x88);
        modrmMem(src, m);
    }

    /** neg r64 */
    void
    negR(int r)
    {
        rex(true, 3, -1, r);
        u8(0xF7);
        modrmReg(3, r);
    }

    /** add r64, imm32 */
    void
    addRImm32(int r, std::int32_t imm)
    {
        rex(true, 0, -1, r);
        u8(0x81);
        modrmReg(0, r);
        u32(static_cast<std::uint32_t>(imm));
    }

    /** and r32, imm8 (sign-extended) */
    void
    andR32Imm8(int r, std::int8_t imm)
    {
        rex(false, 4, -1, r);
        u8(0x83);
        modrmReg(4, r);
        u8(static_cast<std::uint8_t>(imm));
    }

    /** shr r32, imm8 */
    void
    shrR32Imm8(int r, std::uint8_t imm)
    {
        rex(false, 5, -1, r);
        u8(0xC1);
        modrmReg(5, r);
        u8(imm);
    }

    /** cmp a64, b64 */
    void
    cmpRR(int a, int b)
    {
        rex(true, b, -1, a);
        u8(0x39);
        modrmReg(b, a);
    }

    /** jb @p target (an already-emitted label position). */
    void
    jbTo(std::size_t target)
    {
        u8(0x0F);
        u8(0x82);
        const std::int64_t rel = static_cast<std::int64_t>(target)
                                 - static_cast<std::int64_t>(here() + 4);
        u32(static_cast<std::uint32_t>(static_cast<std::int32_t>(rel)));
    }

    void ret() { u8(0xC3); }

    // ---- legacy SSE2 (66 0F op) --------------------------------------

    /** 66 0F op /r with two xmm registers (reg = dst for most ops). */
    void
    sseRR(std::uint8_t op, int reg, int rm)
    {
        u8(0x66);
        rex(false, reg, -1, rm);
        u8(0x0F);
        u8(op);
        modrmReg(reg, rm);
    }

    /** 66 0F op /r with a memory operand. */
    void
    sseRM(std::uint8_t op, int reg, const Mem& m)
    {
        u8(0x66);
        rex(false, reg, m.index, m.base);
        u8(0x0F);
        u8(op);
        modrmMem(reg, m);
    }

    /** cmppd xmm_dst, xmm_src, pred */
    void
    cmppd(int dst, int src, std::uint8_t pred)
    {
        sseRR(0xC2, dst, src);
        u8(pred);
    }

    /** movq xmm, r64 */
    void
    movqXmmR64(int xmm, int gpr)
    {
        u8(0x66);
        rex(true, xmm, -1, gpr);
        u8(0x0F);
        u8(0x6E);
        modrmReg(xmm, gpr);
    }

    /** movmskpd r32, xmm */
    void
    movmskpd(int gpr, int xmm)
    {
        sseRR(0x50, gpr, xmm);
    }

    // ---- VEX (AVX/AVX2) ----------------------------------------------
    // mmmmm: 1 = 0F, 2 = 0F38, 3 = 0F3A. pp: 0 = none, 1 = 66.
    // L: 0 = 128-bit, 1 = 256-bit. vvvv = 0 encodes "no source".

    /** VEX op with reg, vvvv, and rm all registers. */
    void
    vexRR(std::uint8_t op, int mmmmm, int pp, int w, int l, int reg,
          int vvvv, int rm)
    {
        vex3(reg, -1, rm, mmmmm, w, vvvv, l, pp);
        u8(op);
        modrmReg(reg, rm);
    }

    /** VEX op with a memory rm operand. */
    void
    vexRM(std::uint8_t op, int mmmmm, int pp, int w, int l, int reg,
          int vvvv, const Mem& m)
    {
        vex3(reg, m.index, m.base, mmmmm, w, vvvv, l, pp);
        u8(op);
        modrmMem(reg, m);
    }

    /** vcmppd dst, a, b, pred (dst = a cmp b) */
    void
    vcmppd(int dst, int a, int b, std::uint8_t pred)
    {
        vexRR(0xC2, 1, 1, 0, 1, dst, a, b);
        u8(pred);
    }

    /** vblendvpd dst, src1, src2, mask: lane = mask.sign ? src2 : src1 */
    void
    vblendvpd(int dst, int src1, int src2, int mask)
    {
        vexRR(0x4B, 3, 1, 0, 1, dst, src1, src2);
        u8(static_cast<std::uint8_t>(mask << 4));
    }

    /** vzeroupper — emitted before ret so the caller's legacy SSE code
     *  does not pay AVX state transition penalties. */
    void
    vzeroupper()
    {
        u8(0xC5);
        u8(0xF8);
        u8(0x77);
    }

  private:
    void u8(std::uint8_t v) { code_.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
        u8(static_cast<std::uint8_t>(v >> 16));
        u8(static_cast<std::uint8_t>(v >> 24));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    /** Emit a REX prefix if any extension bit (or W) is needed. */
    void
    rex(bool w, int reg, int index, int base)
    {
        const int r = (reg >= 8) ? 1 : 0;
        const int x = (index >= 8) ? 1 : 0;
        const int b = (base >= 8) ? 1 : 0;
        const std::uint8_t v = static_cast<std::uint8_t>(
            0x40 | (w ? 8 : 0) | (r << 2) | (x << 1) | b);
        if (v != 0x40)
            u8(v);
    }

    /** 3-byte VEX prefix (R/X/B/vvvv stored inverted). */
    void
    vex3(int reg, int index, int base, int mmmmm, int w, int vvvv,
         int l, int pp)
    {
        const int r = (reg >= 8) ? 0 : 1;
        const int x = (index >= 8) ? 0 : 1;
        const int b = (base >= 8) ? 0 : 1;
        u8(0xC4);
        u8(static_cast<std::uint8_t>((r << 7) | (x << 6) | (b << 5)
                                     | mmmmm));
        u8(static_cast<std::uint8_t>((w << 7) | ((~vvvv & 0xF) << 3)
                                     | (l << 2) | pp));
    }

    void
    modrmReg(int reg, int rm)
    {
        u8(static_cast<std::uint8_t>(0xC0 | ((reg & 7) << 3)
                                     | (rm & 7)));
    }

    void
    modrmMem(int reg, const Mem& m)
    {
        const int rl = reg & 7;
        const bool needSib = (m.index >= 0) || ((m.base & 7) == 4);
        int mod;
        if (m.disp == 0 && (m.base & 7) != 5)
            mod = 0;
        else if (m.disp >= -128 && m.disp <= 127)
            mod = 1;
        else
            mod = 2;
        if (needSib) {
            u8(static_cast<std::uint8_t>((mod << 6) | (rl << 3) | 4));
            const int scaleBits =
                m.scale == 1 ? 0 : m.scale == 2 ? 1 : m.scale == 4 ? 2 : 3;
            const int idx = (m.index >= 0) ? (m.index & 7) : 4;
            u8(static_cast<std::uint8_t>((scaleBits << 6) | (idx << 3)
                                         | (m.base & 7)));
        } else {
            u8(static_cast<std::uint8_t>((mod << 6) | (rl << 3)
                                         | (m.base & 7)));
        }
        if (mod == 1)
            u8(static_cast<std::uint8_t>(m.disp));
        else if (mod == 2)
            u32(static_cast<std::uint32_t>(m.disp));
    }

    std::vector<std::uint8_t> code_;
};

} // namespace jit
} // namespace uncertain

#endif // UNCERTAIN_CORE_JIT_JIT_ASSEMBLER_HPP
