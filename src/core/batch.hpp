/**
 * @file
 * Columnar batched sampling engine.
 *
 * BatchSampler is the serial driver for the flat plans of
 * core/batch_plan.hpp: it compiles a graph once (cached per root and
 * optimizer configuration), then fills contiguous columns block by
 * block — per-node kernel loops instead of a per-sample tree walk
 * with memo lookups. This is the compiled-forward-inference shape of
 * a PPL runtime: the graph is the program, the plan is its object
 * code (optimized by the pass pipeline in core/batch_plan.hpp), a
 * block is one vectorized execution.
 *
 * Determinism contract (see docs/API.md): output is a pure function
 * of (caller Rng snapshot, n, blockSize, graph shape) — the optimizer
 * passes do not change it (they are bit-exact; see PlanOptions).
 * Identical across runs and across engines sharing the same block
 * partition — ParallelSampler at any thread count with chunkSize ==
 * blockSize is bit-identical to BatchSampler. Not bit-identical to
 * the tree walk; the statistical-equivalence suite pins both engines
 * to the same law. Memory footprint: columnCount() * blockSize
 * elements per workspace, where columnCount() is the number of
 * *physical* columns after buffer reuse (one workspace per engine,
 * one extra per worker thread in the parallel engine).
 */

#ifndef UNCERTAIN_CORE_BATCH_HPP
#define UNCERTAIN_CORE_BATCH_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/batch_plan.hpp"
#include "core/conditional.hpp"
#include "core/node.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace core {

/** Tuning for the columnar batch engine. */
struct BatchOptions
{
    /**
     * Samples per column block. Large enough that per-node kernel
     * dispatch amortizes to nothing, small enough that a block's
     * columns stay cache-resident. Part of the determinism contract:
     * changing it changes the stream partition (and so the samples).
     */
    std::size_t blockSize = 8192;

    /**
     * Optimizer pass toggles applied when compiling plans. All passes
     * are on by default; disabling any (or all) of them never changes
     * the samples, only the speed and the workspace footprint.
     */
    PlanOptions optimizer{};
};

/** Counters for PlanCache observability (core::inspect / --verbose). */
struct PlanCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    //!< lookups that compiled a plan
    std::uint64_t evictions = 0; //!< LRU entries dropped at capacity
};

/**
 * Bounded, thread-safe LRU cache of compiled plans keyed by
 * (root-node identity, optimizer configuration). A cached plan pins
 * its graph alive (BatchPlan::keepAlive_), so a key can never alias a
 * recycled node address while the entry lives: a rebuilt root is a
 * new allocation and necessarily misses. At capacity the
 * least-recently-used entry is evicted; a plan handed out earlier
 * stays valid (shared_ptr) even after its entry is evicted.
 *
 * One cache may be shared between samplers — including a BatchSampler
 * and a ParallelSampler's workers — because lookups and insertions
 * are mutex-guarded and plans themselves are immutable. Compilation
 * happens outside the lock; two threads racing on the same new root
 * may both compile, and the loser adopts the winner's plan.
 */
class PlanCache
{
  public:
    static constexpr std::size_t kDefaultCapacity = 64;

    explicit PlanCache(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity > 0 ? capacity : 1)
    {}

    /** The compiled plan for @p root under @p options, cached. */
    template <typename T>
    std::shared_ptr<const BatchPlan>
    planFor(const NodePtr<T>& root, const PlanOptions& options = {})
    {
        UNCERTAIN_REQUIRE(root != nullptr,
                          "batch sampling requires a node");
        const Key key{root.get(), packOptions(options)};
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it != entries_.end()) {
                ++stats_.hits;
                lru_.splice(lru_.begin(), lru_, it->second.lruPos);
                return it->second.plan;
            }
        }
        // Compile outside the lock so other roots' lookups do not
        // serialize behind a large lowering.
        auto plan = BatchPlan::compile(root, options);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lruPos);
            return it->second.plan;
        }
        while (entries_.size() >= capacity_) {
            entries_.erase(lru_.back());
            lru_.pop_back();
            ++stats_.evictions;
        }
        lru_.push_front(key);
        entries_.emplace(key, Entry{std::move(plan), lru_.begin()});
        return entries_.find(key)->second.plan;
    }

    PlanCacheStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    struct Key
    {
        const GraphNode* root;
        std::uint16_t options;

        bool
        operator==(const Key& other) const
        {
            return root == other.root && options == other.options;
        }
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key& key) const
        {
            auto z = reinterpret_cast<std::uintptr_t>(key.root) >> 4;
            z ^= static_cast<std::uintptr_t>(key.options) << 48;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return static_cast<std::size_t>(z ^ (z >> 31));
        }
    };

    struct Entry
    {
        std::shared_ptr<const BatchPlan> plan;
        std::list<Key>::iterator lruPos;
    };

    static std::uint16_t
    packOptions(const PlanOptions& options)
    {
        // Low byte: requested configuration. Backend occupies bits
        // 4-5 so Auto/Jit/Simd/Scalar plans for the same root cache
        // as distinct entries (their strip lambdas differ even when
        // the output is bit-identical).
        const std::uint16_t requested = static_cast<std::uint16_t>(
            (options.cse ? 1u : 0u) | (options.constantFolding ? 2u : 0u)
            | (options.fuseElementwise ? 4u : 0u)
            | (options.reuseBuffers ? 8u : 0u)
            | (static_cast<unsigned>(options.backend) << 4));
        // High byte: the execution environment the plan would bake in
        // at build time. Auto/Jit resolve against simd::activeIsa()
        // and jit::available() when the plan compiles, and the strip
        // closures capture that resolution — so a shared cache must
        // key on it, or a plan built under simd::setForceScalar /
        // jit::setForceDisabled (tests, benches, kill switches) would
        // be served after the switch flips, silently running the
        // wrong backend.
        const std::uint16_t env = static_cast<std::uint16_t>(
            (static_cast<unsigned>(simd::activeIsa()) & 0x7u)
            | (jit::available() ? 0x8u : 0u));
        return static_cast<std::uint16_t>(requested | (env << 8));
    }

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::list<Key> lru_;                          //!< MRU at front
    std::unordered_map<Key, Entry, KeyHash> entries_;
    PlanCacheStats stats_;
};

/**
 * A sampler-private pool of reusable workspaces, one per plan. Not
 * thread-safe (like the sampler owning it); each pool entry keeps its
 * plan alive so the pointer key cannot dangle even after the shared
 * PlanCache evicts the plan.
 */
class WorkspacePool
{
  public:
    static constexpr std::size_t kMaxWorkspaces = 16;

    BatchWorkspace&
    acquire(const std::shared_ptr<const BatchPlan>& plan)
    {
        auto it = entries_.find(plan.get());
        if (it != entries_.end())
            return it->second.workspace;
        if (entries_.size() >= kMaxWorkspaces)
            entries_.clear();
        Entry entry{plan, plan->makeWorkspace()};
        return entries_.emplace(plan.get(), std::move(entry))
            .first->second.workspace;
    }

  private:
    struct Entry
    {
        std::shared_ptr<const BatchPlan> plan;
        BatchWorkspace workspace;
    };

    std::unordered_map<const BatchPlan*, Entry> entries_;
};

/**
 * Serial columnar batch engine behind the same surface as the
 * tree-walk and parallel paths: takeSamples / expectedValue /
 * probability / evaluateCondition. One engine may be reused across
 * graphs and calls; it is not itself thread-safe (one engine per
 * calling thread, like ParallelSampler), though its PlanCache may be
 * shared between engines.
 */
class BatchSampler
{
  public:
    explicit BatchSampler(BatchOptions options = {},
                          std::shared_ptr<PlanCache> cache = nullptr)
        : blockSize_(options.blockSize > 0 ? options.blockSize : 1),
          optimizer_(options.optimizer),
          cache_(cache ? std::move(cache)
                       : std::make_shared<PlanCache>())
    {}

    std::size_t blockSize() const { return blockSize_; }

    /** The optimizer configuration plans are compiled with. */
    const PlanOptions& optimizer() const { return optimizer_; }

    /** The (shareable) plan cache backing this engine. */
    const std::shared_ptr<PlanCache>& planCache() const { return cache_; }

    /** The compiled (and cached) plan for @p node — for inspection. */
    template <typename T>
    std::shared_ptr<const BatchPlan>
    planFor(const NodePtr<T>& node)
    {
        return cache_->planFor(node, optimizer_);
    }

    /**
     * Draw @p n root samples of @p node into a vector. @p rng is
     * advanced once at the end so the next batch sees a fresh stream
     * family (same convention as ParallelSampler).
     */
    template <typename T>
    std::vector<T>
    takeSamples(const NodePtr<T>& node, std::size_t n, Rng& rng)
    {
        std::unique_ptr<T[]> buffer(new T[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        rng.advance();
        return std::vector<T>(buffer.get(), buffer.get() + n);
    }

    /** Mean of @p n samples, reduced serially in index order. */
    template <typename T>
    T
    expectedValue(const NodePtr<T>& node, std::size_t n, Rng& rng)
    {
        UNCERTAIN_REQUIRE(n >= 1, "expectedValue requires n >= 1");
        std::unique_ptr<T[]> buffer(new T[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        ++evalStats().expectations;
        rng.advance();
        T total = buffer[0];
        for (std::size_t i = 1; i < n; ++i)
            total = total + buffer[i];
        return total / static_cast<double>(n);
    }

    /** Point estimate of Pr[node] from @p n batched samples. */
    double
    probability(const NodePtr<bool>& node, std::size_t n, Rng& rng)
    {
        UNCERTAIN_REQUIRE(n >= 1, "probability requires n >= 1");
        std::unique_ptr<bool[]> buffer(new bool[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        rng.advance();
        std::size_t hits = 0;
        for (std::size_t i = 0; i < n; ++i)
            hits += buffer[i] ? 1 : 0;
        return static_cast<double>(hits) / static_cast<double>(n);
    }

    /**
     * Conditional evaluation with batched evidence columns: each
     * chunk of Bernoulli observations is filled by the columnar
     * kernels, then the sequential test consumes it in index order
     * (core/conditional.hpp). Chunks are widened past the SPRT batch
     * so the column machinery has something to amortize over; the
     * decision still matches a serial test fed the same sequence.
     */
    ConditionalResult
    evaluateCondition(const NodePtr<bool>& node, double threshold,
                      const ConditionalOptions& options, Rng& rng)
    {
        return evaluateConditionPlan(cache_->planFor(node, optimizer_),
                                     threshold, options, rng);
    }

    /**
     * Fill out[0..n) with root draws via the cached plan; block b
     * covers absolute indices [b*blockSize, ...). Does not advance
     * @p base and does not touch evalStats.
     */
    template <typename T>
    void
    sampleInto(const NodePtr<T>& node, std::size_t n, const Rng& base,
               T* out)
    {
        sampleIntoPlan(cache_->planFor(node, optimizer_), n, base,
                       out);
    }

    /**
     * Evidence fill for a window [offset, offset + count) of the
     * index space: Bernoulli observations as bytes, blocks at
     * absolute offsets so the stream sequence is deterministic for a
     * given chunk schedule.
     */
    void
    fillEvidence(const NodePtr<bool>& node, const Rng& base,
                 std::size_t offset, std::size_t count,
                 std::uint8_t* out)
    {
        fillEvidencePlan(cache_->planFor(node, optimizer_), base,
                         offset, count, out);
    }

    // ----- plan-direct entry points ---------------------------------
    // The node-keyed methods above resolve their plan through the
    // shared cache on every call; callers that already hold a plan —
    // the serving coalescer executing a batch of requests against one
    // plan-cache entry, or anything driving several queries through
    // the same compiled graph — use these to pay the lookup once per
    // group instead of once per request. Same determinism contract:
    // output is a pure function of (Rng snapshot, n, blockSize, plan),
    // bit-identical to the node-keyed path given the same plan.

    /** sampleInto against an already-resolved plan. */
    template <typename T>
    void
    sampleIntoPlan(const std::shared_ptr<const BatchPlan>& plan,
                   std::size_t n, const Rng& base, T* out)
    {
        UNCERTAIN_REQUIRE(plan != nullptr,
                          "plan-direct sampling requires a plan");
        auto& workspace = workspaces_.acquire(plan);
        const std::size_t rootCol = plan->rootColumn();
        for (std::size_t start = 0; start < n; start += blockSize_) {
            const std::size_t len = std::min(blockSize_, n - start);
            plan->runBlock(workspace, base, start, len);
            const auto* col =
                workspace.template column<T>(rootCol).data();
            std::copy(col, col + len, out + start);
        }
    }

    /** takeSamples against an already-resolved plan. */
    template <typename T>
    std::vector<T>
    takeSamplesPlan(const std::shared_ptr<const BatchPlan>& plan,
                    std::size_t n, Rng& rng)
    {
        std::unique_ptr<T[]> buffer(new T[n]());
        sampleIntoPlan(plan, n, rng, buffer.get());
        evalStats().rootSamples += n;
        rng.advance();
        return std::vector<T>(buffer.get(), buffer.get() + n);
    }

    /** expectedValue against an already-resolved plan. */
    template <typename T>
    T
    expectedValuePlan(const std::shared_ptr<const BatchPlan>& plan,
                      std::size_t n, Rng& rng)
    {
        UNCERTAIN_REQUIRE(n >= 1, "expectedValue requires n >= 1");
        std::unique_ptr<T[]> buffer(new T[n]());
        sampleIntoPlan(plan, n, rng, buffer.get());
        evalStats().rootSamples += n;
        ++evalStats().expectations;
        rng.advance();
        T total = buffer[0];
        for (std::size_t i = 1; i < n; ++i)
            total = total + buffer[i];
        return total / static_cast<double>(n);
    }

    /** fillEvidence against an already-resolved plan. */
    void
    fillEvidencePlan(const std::shared_ptr<const BatchPlan>& plan,
                     const Rng& base, std::size_t offset,
                     std::size_t count, std::uint8_t* out)
    {
        UNCERTAIN_REQUIRE(plan != nullptr,
                          "plan-direct sampling requires a plan");
        auto& workspace = workspaces_.acquire(plan);
        const std::size_t rootCol = plan->rootColumn();
        for (std::size_t start = 0; start < count;
             start += blockSize_) {
            const std::size_t len =
                std::min(blockSize_, count - start);
            plan->runBlock(workspace, base, offset + start, len);
            const auto* col = workspace.column<bool>(rootCol).data();
            std::copy(col, col + len, out + start);
        }
    }

    /**
     * evaluateCondition against an already-resolved plan: one cache
     * lookup for the whole sequential test instead of one per
     * evidence chunk.
     */
    ConditionalResult
    evaluateConditionPlan(const std::shared_ptr<const BatchPlan>& plan,
                          double threshold,
                          const ConditionalOptions& options, Rng& rng)
    {
        const std::size_t chunk = std::max<std::size_t>(
            options.sprt.batchSize, std::size_t{256});
        auto result = evaluateConditionChunked(
            [&](std::size_t offset, std::size_t count,
                std::uint8_t* out) {
                fillEvidencePlan(plan, rng, offset, count, out);
            },
            threshold, options, chunk);
        rng.advance();
        return result;
    }

  private:
    std::size_t blockSize_;
    PlanOptions optimizer_;
    std::shared_ptr<PlanCache> cache_;
    WorkspacePool workspaces_;
};

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_BATCH_HPP
