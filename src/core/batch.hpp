/**
 * @file
 * Columnar batched sampling engine.
 *
 * BatchSampler is the serial driver for the flat plans of
 * core/batch_plan.hpp: it compiles a graph once (cached per root),
 * then fills contiguous columns block by block — per-node kernel
 * loops instead of a per-sample tree walk with memo lookups. This is
 * the compiled-forward-inference shape of a PPL runtime: the graph is
 * the program, the plan is its object code, a block is one vectorized
 * execution.
 *
 * Determinism contract (see docs/API.md): output is a pure function
 * of (caller Rng snapshot, n, blockSize, graph shape). Identical
 * across runs and across engines sharing the same block partition —
 * ParallelSampler at any thread count with chunkSize == blockSize is
 * bit-identical to BatchSampler. Not bit-identical to the tree walk;
 * the statistical-equivalence suite pins both engines to the same
 * law. Memory footprint: columnCount * blockSize elements per
 * workspace (one workspace per engine, one extra per worker thread in
 * the parallel engine).
 */

#ifndef UNCERTAIN_CORE_BATCH_HPP
#define UNCERTAIN_CORE_BATCH_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/batch_plan.hpp"
#include "core/conditional.hpp"
#include "core/node.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace core {

/** Tuning for the columnar batch engine. */
struct BatchOptions
{
    /**
     * Samples per column block. Large enough that per-node kernel
     * dispatch amortizes to nothing, small enough that a block's
     * columns stay cache-resident. Part of the determinism contract:
     * changing it changes the stream partition (and so the samples).
     */
    std::size_t blockSize = 8192;
};

/**
 * Cache of compiled plans keyed by root-node identity, with a reusable
 * serial workspace per plan. The plan pins its graph alive, so a key
 * can never dangle onto a recycled node address while cached. Bounded:
 * the cache resets once kMaxPlans distinct roots have been compiled
 * (re-lowering is cheap relative to any batch worth compiling for).
 */
class PlanCache
{
  public:
    struct Entry
    {
        std::shared_ptr<const BatchPlan> plan;
        BatchWorkspace workspace;
    };

    static constexpr std::size_t kMaxPlans = 64;

    template <typename T>
    Entry&
    entryFor(const NodePtr<T>& root)
    {
        UNCERTAIN_REQUIRE(root != nullptr,
                          "batch sampling requires a node");
        auto it = entries_.find(root.get());
        if (it != entries_.end())
            return it->second;
        if (entries_.size() >= kMaxPlans)
            entries_.clear();
        auto plan = BatchPlan::compile(root);
        Entry entry{plan, plan->makeWorkspace()};
        return entries_.emplace(root.get(), std::move(entry))
            .first->second;
    }

  private:
    std::unordered_map<const GraphNode*, Entry> entries_;
};

/**
 * Serial columnar batch engine behind the same surface as the
 * tree-walk and parallel paths: takeSamples / expectedValue /
 * probability / evaluateCondition. One engine may be reused across
 * graphs and calls; it is not itself thread-safe (one engine per
 * calling thread, like ParallelSampler).
 */
class BatchSampler
{
  public:
    explicit BatchSampler(BatchOptions options = {})
        : blockSize_(options.blockSize > 0 ? options.blockSize : 1)
    {}

    std::size_t blockSize() const { return blockSize_; }

    /**
     * Draw @p n root samples of @p node into a vector. @p rng is
     * advanced once at the end so the next batch sees a fresh stream
     * family (same convention as ParallelSampler).
     */
    template <typename T>
    std::vector<T>
    takeSamples(const NodePtr<T>& node, std::size_t n, Rng& rng)
    {
        std::unique_ptr<T[]> buffer(new T[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        rng.advance();
        return std::vector<T>(buffer.get(), buffer.get() + n);
    }

    /** Mean of @p n samples, reduced serially in index order. */
    template <typename T>
    T
    expectedValue(const NodePtr<T>& node, std::size_t n, Rng& rng)
    {
        UNCERTAIN_REQUIRE(n >= 1, "expectedValue requires n >= 1");
        std::unique_ptr<T[]> buffer(new T[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        ++evalStats().expectations;
        rng.advance();
        T total = buffer[0];
        for (std::size_t i = 1; i < n; ++i)
            total = total + buffer[i];
        return total / static_cast<double>(n);
    }

    /** Point estimate of Pr[node] from @p n batched samples. */
    double
    probability(const NodePtr<bool>& node, std::size_t n, Rng& rng)
    {
        UNCERTAIN_REQUIRE(n >= 1, "probability requires n >= 1");
        std::unique_ptr<bool[]> buffer(new bool[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        rng.advance();
        std::size_t hits = 0;
        for (std::size_t i = 0; i < n; ++i)
            hits += buffer[i] ? 1 : 0;
        return static_cast<double>(hits) / static_cast<double>(n);
    }

    /**
     * Conditional evaluation with batched evidence columns: each
     * chunk of Bernoulli observations is filled by the columnar
     * kernels, then the sequential test consumes it in index order
     * (core/conditional.hpp). Chunks are widened past the SPRT batch
     * so the column machinery has something to amortize over; the
     * decision still matches a serial test fed the same sequence.
     */
    ConditionalResult
    evaluateCondition(const NodePtr<bool>& node, double threshold,
                      const ConditionalOptions& options, Rng& rng)
    {
        const std::size_t chunk = std::max<std::size_t>(
            options.sprt.batchSize, std::size_t{256});
        auto result = evaluateConditionChunked(
            [&](std::size_t offset, std::size_t count,
                std::uint8_t* out) {
                fillEvidence(node, rng, offset, count, out);
            },
            threshold, options, chunk);
        rng.advance();
        return result;
    }

    /**
     * Fill out[0..n) with root draws via the cached plan; block b
     * covers absolute indices [b*blockSize, ...). Does not advance
     * @p base and does not touch evalStats.
     */
    template <typename T>
    void
    sampleInto(const NodePtr<T>& node, std::size_t n, const Rng& base,
               T* out)
    {
        auto& entry = cache_.entryFor(node);
        const std::size_t rootCol = entry.plan->rootColumn();
        for (std::size_t start = 0; start < n; start += blockSize_) {
            const std::size_t len = std::min(blockSize_, n - start);
            entry.plan->runBlock(entry.workspace, base, start, len);
            const auto* col =
                entry.workspace.template column<T>(rootCol).data();
            std::copy(col, col + len, out + start);
        }
    }

    /**
     * Evidence fill for a window [offset, offset + count) of the
     * index space: Bernoulli observations as bytes, blocks at
     * absolute offsets so the stream sequence is deterministic for a
     * given chunk schedule.
     */
    void
    fillEvidence(const NodePtr<bool>& node, const Rng& base,
                 std::size_t offset, std::size_t count,
                 std::uint8_t* out)
    {
        auto& entry = cache_.entryFor(node);
        const std::size_t rootCol = entry.plan->rootColumn();
        for (std::size_t start = 0; start < count;
             start += blockSize_) {
            const std::size_t len =
                std::min(blockSize_, count - start);
            entry.plan->runBlock(entry.workspace, base,
                                 offset + start, len);
            const auto* col =
                entry.workspace.column<bool>(rootCol).data();
            std::copy(col, col + len, out + start);
        }
    }

  private:
    std::size_t blockSize_;
    PlanCache cache_;
};

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_BATCH_HPP
