#include "core/conditional.hpp"

namespace uncertain {
namespace core {

EvalStats&
evalStats()
{
    thread_local EvalStats stats;
    return stats;
}

void
resetEvalStats()
{
    evalStats() = EvalStats{};
}

} // namespace core
} // namespace uncertain
