/**
 * @file
 * Conditional-evaluation engine: converts the Bernoulli distribution
 * produced by a lifted comparison into a concrete boolean via a
 * statistical hypothesis test (paper sections 3.4 and 4.3).
 *
 * The default strategy is Wald's SPRT with batched draws and a sample
 * cap. Group-sequential (Pocock) and fixed-size strategies are
 * provided for the ablation benches and as the paper's anticipated
 * "closed" alternative.
 */

#ifndef UNCERTAIN_CORE_CONDITIONAL_HPP
#define UNCERTAIN_CORE_CONDITIONAL_HPP

#include <cstddef>
#include <cstdint>

#include "stats/sequential.hpp"
#include "stats/sprt.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace core {

/** Which sequential test executes a conditional. */
enum class ConditionalStrategy
{
    Sprt,            //!< Wald SPRT (the paper's implementation)
    GroupSequential, //!< Pocock boundaries, bounded sample size
    FixedSample,     //!< draw N samples, compare the estimate (baseline)
};

/** Tuning for conditional evaluation. */
struct ConditionalOptions
{
    ConditionalStrategy strategy = ConditionalStrategy::Sprt;
    /** SPRT tuning (also supplies batchSize/maxSamples for others). */
    stats::SprtOptions sprt{};
    /** Interim analyses for the group-sequential strategy. */
    std::size_t groupLooks = 5;
    /** Sample size for the fixed-size strategy. */
    std::size_t fixedSamples = 100;
};

/** Outcome of evaluating one conditional. */
struct ConditionalResult
{
    /**
     * Ternary decision (section 3.4): AcceptAlternative means the
     * evidence that Pr[cond] > threshold is significant; AcceptNull
     * means the evidence for the converse is significant;
     * Inconclusive means neither (the conditional falls through,
     * like the paper's A < B / A >= B example).
     */
    stats::TestDecision decision;
    /** Empirical estimate of Pr[cond] from the samples drawn. */
    double estimate;
    /** Samples consumed by the test. */
    std::size_t samplesUsed;

    /** The boolean a branch sees: true only on AcceptAlternative. */
    bool
    toBool() const
    {
        return decision == stats::TestDecision::AcceptAlternative;
    }
};

/**
 * Per-thread counters for sampling effort, powering the paper's
 * "samples per cell update" measurements (Figure 14(b)).
 */
struct EvalStats
{
    std::uint64_t rootSamples = 0;  //!< root draws (one graph pass each)
    std::uint64_t conditionals = 0; //!< conditional evaluations
    std::uint64_t expectations = 0; //!< expected-value evaluations
};

/** Access the calling thread's counters. */
EvalStats& evalStats();

/** Zero the calling thread's counters. */
void resetEvalStats();

/**
 * Evaluate "Pr[cond] > threshold" by repeatedly invoking @p draw (a
 * callable returning one Bernoulli observation) under the configured
 * sequential test.
 */
template <typename Sampler>
ConditionalResult
evaluateCondition(Sampler&& draw, double threshold,
                  const ConditionalOptions& options = {})
{
    UNCERTAIN_REQUIRE(threshold > 0.0 && threshold < 1.0,
                      "conditional threshold must be in (0, 1)");
    EvalStats& counters = evalStats();
    ++counters.conditionals;

    switch (options.strategy) {
      case ConditionalStrategy::Sprt: {
        stats::Sprt test(threshold, options.sprt);
        const std::size_t batch = options.sprt.batchSize;
        while (!test.isDecided() && !test.isCapped()) {
            // Draw a full batch before consulting the boundaries, as
            // the paper's runtime does with step size k.
            for (std::size_t i = 0;
                 i < batch && !test.isCapped() && !test.isDecided();
                 ++i) {
                test.add(draw());
                ++counters.rootSamples;
            }
        }
        return {test.decision(), test.estimate(), test.samplesUsed()};
      }

      case ConditionalStrategy::GroupSequential: {
        stats::GroupSequentialTest test(threshold, options.groupLooks,
                                        options.sprt.maxSamples);
        while (test.decision() == stats::TestDecision::Inconclusive
               && test.samplesUsed() < test.maxSamples()) {
            test.add(draw());
            ++counters.rootSamples;
        }
        return {test.decision(), test.estimate(), test.samplesUsed()};
      }

      case ConditionalStrategy::FixedSample: {
        std::size_t successes = 0;
        for (std::size_t i = 0; i < options.fixedSamples; ++i) {
            successes += draw() ? 1 : 0;
            ++counters.rootSamples;
        }
        double estimate = static_cast<double>(successes)
                          / static_cast<double>(options.fixedSamples);
        // No significance machinery: the estimate decides directly,
        // which is exactly the uncontrolled-approximation-error
        // baseline the paper argues against.
        auto decision = estimate > threshold
                            ? stats::TestDecision::AcceptAlternative
                            : stats::TestDecision::AcceptNull;
        return {decision, estimate, options.fixedSamples};
      }
    }
    UNCERTAIN_ASSERT(false, "unknown conditional strategy");
    return {stats::TestDecision::Inconclusive, 0.0, 0};
}

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_CONDITIONAL_HPP
