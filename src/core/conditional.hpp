/**
 * @file
 * Conditional-evaluation engine: converts the Bernoulli distribution
 * produced by a lifted comparison into a concrete boolean via a
 * statistical hypothesis test (paper sections 3.4 and 4.3).
 *
 * The default strategy is Wald's SPRT with batched draws and a sample
 * cap. Group-sequential (Pocock) and fixed-size strategies are
 * provided for the ablation benches and as the paper's anticipated
 * "closed" alternative.
 */

#ifndef UNCERTAIN_CORE_CONDITIONAL_HPP
#define UNCERTAIN_CORE_CONDITIONAL_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/sequential.hpp"
#include "stats/sprt.hpp"
#include "support/error.hpp"

namespace uncertain {
namespace core {

/** Which sequential test executes a conditional. */
enum class ConditionalStrategy
{
    Sprt,            //!< Wald SPRT (the paper's implementation)
    GroupSequential, //!< Pocock boundaries, bounded sample size
    FixedSample,     //!< draw N samples, compare the estimate (baseline)
};

/**
 * Whether a conditional may bypass the sequential test entirely via
 * the exact enumeration backend (src/exact). Auto is safe to leave
 * on: the backend only accepts graphs whose leaves declare finite
 * support, for which the closed-form answer is the value the
 * hypothesis test estimates.
 */
enum class ExactRouting
{
    Auto,  //!< answer in closed form whenever the backend accepts
    Never, //!< always run the sequential sampling test
};

/** Tuning for conditional evaluation. */
struct ConditionalOptions
{
    ConditionalStrategy strategy = ConditionalStrategy::Sprt;
    /** SPRT tuning (also supplies batchSize/maxSamples for others). */
    stats::SprtOptions sprt{};
    /** Interim analyses for the group-sequential strategy. */
    std::size_t groupLooks = 5;
    /** Sample size for the fixed-size strategy. */
    std::size_t fixedSamples = 100;
    /** Closed-form bypass policy (see ExactRouting). */
    ExactRouting exactRouting = ExactRouting::Auto;
    /**
     * Joint-state bound for the closed-form bypass. Deliberately
     * tighter than exact::EnumerationLimits' default: past this size
     * a sequential test is usually cheaper than enumerating, so the
     * conditional falls back to sampling rather than stalling.
     */
    std::size_t exactMaxStates = std::size_t{1} << 16;
};

/** Outcome of evaluating one conditional. */
struct ConditionalResult
{
    /**
     * Ternary decision (section 3.4): AcceptAlternative means the
     * evidence that Pr[cond] > threshold is significant; AcceptNull
     * means the evidence for the converse is significant;
     * Inconclusive means neither (the conditional falls through,
     * like the paper's A < B / A >= B example).
     */
    stats::TestDecision decision;
    /** Empirical estimate of Pr[cond] from the samples drawn. */
    double estimate;
    /** Samples consumed by the test. */
    std::size_t samplesUsed;

    /** The boolean a branch sees: true only on AcceptAlternative. */
    bool
    toBool() const
    {
        return decision == stats::TestDecision::AcceptAlternative;
    }
};

/**
 * Per-thread counters for sampling effort, powering the paper's
 * "samples per cell update" measurements (Figure 14(b)).
 */
struct EvalStats
{
    std::uint64_t rootSamples = 0;  //!< root draws (one graph pass each)
    std::uint64_t conditionals = 0; //!< conditional evaluations
    std::uint64_t expectations = 0; //!< expected-value evaluations
};

/** Access the calling thread's counters. */
EvalStats& evalStats();

/** Zero the calling thread's counters. */
void resetEvalStats();

/**
 * Evaluate "Pr[cond] > threshold" by repeatedly invoking @p draw (a
 * callable returning one Bernoulli observation) under the configured
 * sequential test.
 */
template <typename Sampler>
ConditionalResult
evaluateCondition(Sampler&& draw, double threshold,
                  const ConditionalOptions& options = {})
{
    UNCERTAIN_REQUIRE(threshold > 0.0 && threshold < 1.0,
                      "conditional threshold must be in (0, 1)");
    EvalStats& counters = evalStats();
    ++counters.conditionals;

    switch (options.strategy) {
      case ConditionalStrategy::Sprt: {
        stats::Sprt test(threshold, options.sprt);
        const std::size_t batch = options.sprt.batchSize;
        while (!test.isDecided() && !test.isCapped()) {
            // Draw a full batch before consulting the boundaries, as
            // the paper's runtime does with step size k.
            for (std::size_t i = 0;
                 i < batch && !test.isCapped() && !test.isDecided();
                 ++i) {
                test.add(draw());
                ++counters.rootSamples;
            }
        }
        return {test.decision(), test.estimate(), test.samplesUsed()};
      }

      case ConditionalStrategy::GroupSequential: {
        stats::GroupSequentialTest test(threshold, options.groupLooks,
                                        options.sprt.maxSamples);
        while (test.decision() == stats::TestDecision::Inconclusive
               && test.samplesUsed() < test.maxSamples()) {
            test.add(draw());
            ++counters.rootSamples;
        }
        return {test.decision(), test.estimate(), test.samplesUsed()};
      }

      case ConditionalStrategy::FixedSample: {
        std::size_t successes = 0;
        for (std::size_t i = 0; i < options.fixedSamples; ++i) {
            successes += draw() ? 1 : 0;
            ++counters.rootSamples;
        }
        double estimate = static_cast<double>(successes)
                          / static_cast<double>(options.fixedSamples);
        // No significance machinery: the estimate decides directly,
        // which is exactly the uncontrolled-approximation-error
        // baseline the paper argues against.
        auto decision = estimate > threshold
                            ? stats::TestDecision::AcceptAlternative
                            : stats::TestDecision::AcceptNull;
        return {decision, estimate, options.fixedSamples};
      }
    }
    UNCERTAIN_ASSERT(false, "unknown conditional strategy");
    return {stats::TestDecision::Inconclusive, 0.0, 0};
}

/**
 * Chunk-wise conditional evaluation, the parallel engine's entry
 * point. @p drawChunk is a callable
 * `void(std::size_t offset, std::size_t count, std::uint8_t* out)`
 * filling out[0..count) with the Bernoulli observations for sample
 * indices [offset, offset + count) — typically drawn concurrently
 * from split() streams. The sequential test consumes each chunk in
 * index order and the stopping boundaries are consulted between
 * chunks, so the decision and samplesUsed() match a serial test fed
 * the same observation sequence; only the number of *drawn* samples
 * (counted in evalStats) can overshoot the decision point by at most
 * one chunk.
 */
template <typename ChunkSampler>
ConditionalResult
evaluateConditionChunked(ChunkSampler&& drawChunk, double threshold,
                         const ConditionalOptions& options = {},
                         std::size_t chunkSize = 0)
{
    UNCERTAIN_REQUIRE(threshold > 0.0 && threshold < 1.0,
                      "conditional threshold must be in (0, 1)");
    EvalStats& counters = evalStats();
    ++counters.conditionals;

    std::vector<std::uint8_t> chunk;
    auto draw = [&](std::size_t offset, std::size_t count) {
        chunk.resize(count);
        drawChunk(offset, count, chunk.data());
        counters.rootSamples += count;
    };

    switch (options.strategy) {
      case ConditionalStrategy::Sprt: {
        stats::Sprt test(threshold, options.sprt);
        // Default to the SPRT batch ("step size k"); the caller may
        // widen chunks to amortize fan-out overhead.
        const std::size_t batch =
            chunkSize > 0 ? chunkSize
                          : std::max<std::size_t>(options.sprt.batchSize, 1);
        std::size_t drawn = 0;
        while (!test.isDecided() && !test.isCapped()) {
            std::size_t count =
                std::min(batch, options.sprt.maxSamples - drawn);
            draw(drawn, count);
            test.addMany(chunk.data(), count);
            drawn += count;
        }
        return {test.decision(), test.estimate(), test.samplesUsed()};
      }

      case ConditionalStrategy::GroupSequential: {
        stats::GroupSequentialTest test(threshold, options.groupLooks,
                                        options.sprt.maxSamples);
        // Chunk at look boundaries: decisions only occur at looks, so
        // this is behaviorally identical to the serial test.
        const std::size_t perLook = std::max<std::size_t>(
            1, test.maxSamples() / std::max<std::size_t>(
                   1, options.groupLooks));
        std::size_t drawn = 0;
        while (test.decision() == stats::TestDecision::Inconclusive
               && drawn < test.maxSamples()) {
            std::size_t count =
                std::min(perLook, test.maxSamples() - drawn);
            draw(drawn, count);
            test.addMany(chunk.data(), count);
            drawn += count;
        }
        return {test.decision(), test.estimate(), test.samplesUsed()};
      }

      case ConditionalStrategy::FixedSample: {
        draw(0, options.fixedSamples);
        std::size_t successes = 0;
        for (std::size_t i = 0; i < options.fixedSamples; ++i)
            successes += chunk[i] ? 1 : 0;
        double estimate = static_cast<double>(successes)
                          / static_cast<double>(options.fixedSamples);
        auto decision = estimate > threshold
                            ? stats::TestDecision::AcceptAlternative
                            : stats::TestDecision::AcceptNull;
        return {decision, estimate, options.fixedSamples};
      }
    }
    UNCERTAIN_ASSERT(false, "unknown conditional strategy");
    return {stats::TestDecision::Inconclusive, 0.0, 0};
}

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_CONDITIONAL_HPP
