/**
 * @file
 * Columnar batch-evaluation plan: the compilation target the node
 * graph is lowered into before bulk sampling.
 *
 * The tree-walk interpreter in core/node.hpp pays a memo-table lookup
 * and a virtual dispatch per node per sample. The batch engine pays
 * those costs once per *block* instead: a one-time topological
 * lowering flattens the DAG into a sequence of kernels in SSA form —
 * every node owns exactly one contiguous column, shared subexpressions
 * are interned so they appear once (preserving the Figure 8(b)
 * shared-leaf semantics by construction) — and each kernel fills its
 * column for a whole block of samples in a single tight loop.
 *
 * Stream discipline: a block whose first sample has absolute index s
 * derives a block generator `base.split(s)` from the caller's Rng
 * snapshot, and the leaf with topological discovery index L draws its
 * column from `blockBase.split(L)`. The output is therefore a pure
 * function of (seed, n, block size, graph shape): identical for any
 * thread count, though not bit-identical to the tree walk (the
 * conformance suite in tests/core/batch_equivalence_test.cpp pins the
 * two engines to the same law statistically).
 *
 * Lowering is driven by Node<T>::lowerInto (core/node.hpp); execution
 * by BatchSampler / ParallelSampler (core/batch.hpp, core/parallel.hpp).
 */

#ifndef UNCERTAIN_CORE_BATCH_PLAN_HPP
#define UNCERTAIN_CORE_BATCH_PLAN_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace core {

class GraphNode;

namespace batch {

/**
 * Column storage type for a base type T. Identical to T except for
 * bool, which is widened to one byte so columns expose contiguous
 * writable storage (std::vector<bool> packs bits and has no data()).
 * Kernels read and write Store<T>; the implicit bool <-> uint8_t
 * conversions keep the lifted operators' signatures unchanged.
 */
template <typename T>
struct ColumnStorage
{
    using type = T;
};

template <>
struct ColumnStorage<bool>
{
    using type = std::uint8_t;
};

template <typename T>
using Store = typename ColumnStorage<T>::type;

} // namespace batch

/** Type-erased base for one column of the workspace. */
class ColumnBase
{
  public:
    virtual ~ColumnBase() = default;

    /** Resize the column to @p n elements (block length). */
    virtual void resize(std::size_t n) = 0;
};

/** A contiguous column of batch::Store<T> values, one per sample. */
template <typename T>
class Column final : public ColumnBase
{
  public:
    using StoreType = batch::Store<T>;

    void resize(std::size_t n) override { values_.resize(n); }

    StoreType* data() { return values_.data(); }
    const StoreType* data() const { return values_.data(); }
    std::size_t size() const { return values_.size(); }

  private:
    std::vector<StoreType> values_;
};

/**
 * Per-execution state for one block: the column storage plus the
 * block's generator. A workspace belongs to one thread at a time;
 * parallel execution gives each worker its own workspace over the
 * same immutable plan.
 */
class BatchWorkspace
{
  public:
    BatchWorkspace() = default;
    BatchWorkspace(BatchWorkspace&&) = default;
    BatchWorkspace& operator=(BatchWorkspace&&) = default;
    BatchWorkspace(const BatchWorkspace&) = delete;
    BatchWorkspace& operator=(const BatchWorkspace&) = delete;

    /** Samples in the current block. */
    std::size_t length() const { return length_; }

    /** The typed column @p index; the type is fixed by the plan. */
    template <typename T>
    Column<T>&
    column(std::size_t index)
    {
        UNCERTAIN_ASSERT(index < columns_.size(),
                         "column index out of range");
        auto* typed = static_cast<Column<T>*>(columns_[index].get());
        return *typed;
    }

    /**
     * The generator for leaf stream @p leafIndex of the current
     * block: blockBase.split(leafIndex), a pure function of (caller
     * snapshot, block start, leaf index).
     */
    Rng
    leafStream(std::uint64_t leafIndex) const
    {
        return blockBase_.split(leafIndex);
    }

  private:
    friend class BatchPlan;

    std::vector<std::unique_ptr<ColumnBase>> columns_;
    std::size_t length_ = 0;
    Rng blockBase_{0};
};

/** One compiled kernel: fills its column for the current block. */
using BatchStep = std::function<void(BatchWorkspace&)>;

/**
 * Accumulates the flat plan during lowering. Nodes are interned by
 * identity, so a shared subexpression is lowered exactly once and
 * every consumer reads the same column — the SSA form of Figure 8(b).
 */
class BatchBuilder
{
  public:
    /** Column index of @p node if already lowered, else npos. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t
    find(const GraphNode* node) const
    {
        auto it = index_.find(node);
        return it == index_.end() ? npos : it->second;
    }

    /**
     * Register a fresh column of base type T for @p node and return
     * its index. Must be called after the node's operands are
     * lowered and before its step is appended.
     */
    template <typename T>
    std::size_t
    addColumn(const GraphNode* node)
    {
        UNCERTAIN_ASSERT(find(node) == npos,
                         "node lowered twice despite interning");
        const std::size_t id = factories_.size();
        factories_.push_back(
            [] { return std::unique_ptr<ColumnBase>(new Column<T>()); });
        index_.emplace(node, id);
        return id;
    }

    /**
     * Claim the next leaf stream index (topological discovery order);
     * each leaf kernel derives its per-block generator from it.
     */
    std::uint64_t nextLeafStream() { return leafCount_++; }

    /** Append the kernel for the most recently added column. */
    void addStep(BatchStep step) { steps_.push_back(std::move(step)); }

    std::size_t columnCount() const { return factories_.size(); }
    std::uint64_t leafCount() const { return leafCount_; }

  private:
    friend class BatchPlan;

    std::unordered_map<const GraphNode*, std::size_t> index_;
    std::vector<std::function<std::unique_ptr<ColumnBase>()>> factories_;
    std::vector<BatchStep> steps_;
    std::uint64_t leafCount_ = 0;
};

/**
 * An immutable compiled plan: ordered kernels plus column factories.
 * Compile once per graph (BatchPlan::compile), execute any number of
 * blocks from any number of threads — runBlock touches only the
 * caller's workspace. The plan keeps the root graph alive so a cache
 * keyed by node identity can never alias a recycled address.
 */
class BatchPlan
{
  public:
    /**
     * Lower the graph rooted at @p root (a NodePtr<T>) into a plan.
     * The root's column index is recorded for typed readback.
     */
    template <typename NodeT>
    static std::shared_ptr<const BatchPlan>
    compile(const std::shared_ptr<const NodeT>& root)
    {
        UNCERTAIN_REQUIRE(root != nullptr,
                          "BatchPlan::compile requires a root node");
        BatchBuilder builder;
        const std::size_t rootColumn = root->lowerInto(builder);
        return std::shared_ptr<const BatchPlan>(
            new BatchPlan(std::move(builder), rootColumn, root));
    }

    std::size_t rootColumn() const { return rootColumn_; }
    std::size_t columnCount() const { return factories_.size(); }
    std::size_t leafCount() const
    {
        return static_cast<std::size_t>(leafCount_);
    }

    /** A fresh workspace with one column per plan slot. */
    BatchWorkspace
    makeWorkspace() const
    {
        BatchWorkspace ws;
        ws.columns_.reserve(factories_.size());
        for (const auto& make : factories_)
            ws.columns_.push_back(make());
        return ws;
    }

    /**
     * Fill every column of @p ws for the block of @p length samples
     * whose first absolute sample index is @p blockStart, deriving
     * leaf streams from @p base per the stream discipline above.
     */
    void
    runBlock(BatchWorkspace& ws, const Rng& base, std::size_t blockStart,
             std::size_t length) const
    {
        UNCERTAIN_ASSERT(ws.columns_.size() == factories_.size(),
                         "workspace does not belong to this plan");
        ws.length_ = length;
        ws.blockBase_ = base.split(blockStart);
        for (auto& column : ws.columns_)
            column->resize(length);
        for (const auto& step : steps_)
            step(ws);
    }

  private:
    BatchPlan(BatchBuilder&& builder, std::size_t rootColumn,
              std::shared_ptr<const GraphNode> keepAlive)
        : factories_(std::move(builder.factories_)),
          steps_(std::move(builder.steps_)),
          leafCount_(builder.leafCount_), rootColumn_(rootColumn),
          keepAlive_(std::move(keepAlive))
    {}

    std::vector<std::function<std::unique_ptr<ColumnBase>()>> factories_;
    std::vector<BatchStep> steps_;
    std::uint64_t leafCount_;
    std::size_t rootColumn_;
    std::shared_ptr<const GraphNode> keepAlive_;
};

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_BATCH_PLAN_HPP
