/**
 * @file
 * Columnar batch-evaluation plan: the compilation target the node
 * graph is lowered into before bulk sampling — plus the optimizer
 * pass pipeline that runs between lowering and execution.
 *
 * The tree-walk interpreter in core/node.hpp pays a memo-table lookup
 * and a virtual dispatch per node per sample. The batch engine pays
 * those costs once per *block* instead: a one-time topological
 * lowering flattens the DAG into a sequence of kernels in SSA form —
 * every node owns exactly one contiguous column, shared subexpressions
 * are interned so they appear once (preserving the Figure 8(b)
 * shared-leaf semantics by construction) — and each kernel fills its
 * column for a whole block of samples in a single tight loop.
 *
 * Lowering emits, next to each executable kernel, a small step record
 * (batch::StepInfo) describing what the kernel does: its kind (leaf /
 * constant / elementwise), output column, operand columns, the
 * functor's type identity, and typed helper closures (constant
 * folding, strip-mined fusion). The optimizer runs over those records
 * after lowering, in this order:
 *
 *   1. structural CSE   — interior steps with the same operator type
 *                         and the same (canonicalized) operand columns
 *                         are merged; distinct stochastic leaves are
 *                         never keyed, so Figure 8 SSA semantics hold.
 *   2. constant folding — elementwise steps whose operands are all
 *                         point masses are evaluated at compile time;
 *                         constant columns are filled once per
 *                         workspace, not once per block.
 *   3. kernel fusion    — maximal runs of consecutive elementwise
 *                         steps become one strip-mined kernel; values
 *                         consumed only inside the run live in
 *                         stack-resident strip registers and never
 *                         round-trip through a column.
 *   4. buffer reuse     — a last-use (liveness) analysis maps logical
 *                         columns onto a small set of physical slots,
 *                         shrinking the workspace from O(nodes) to
 *                         O(live width) columns.
 *
 * Equivalence contract: none of the passes reassociates floating
 * point or perturbs the leaf stream assignment (stream indices are
 * fixed during lowering, before any pass runs), so an optimized plan
 * is bit-identical to the unoptimized plan for the same (seed, n,
 * blockSize, graph). The pass toggles in PlanOptions exist for
 * debugging and for the equivalence suite, not because outputs
 * differ.
 *
 * Stream discipline: a block whose first sample has absolute index s
 * derives a block generator `base.split(s)` from the caller's Rng
 * snapshot, and the leaf with topological discovery index L draws its
 * column from `blockBase.split(L)`. The output is therefore a pure
 * function of (seed, n, block size, graph shape): identical for any
 * thread count, though not bit-identical to the tree walk (the
 * conformance suite in tests/core/batch_equivalence_test.cpp pins the
 * two engines to the same law statistically).
 *
 * Lowering is driven by Node<T>::lowerInto (core/node.hpp); execution
 * by BatchSampler / ParallelSampler (core/batch.hpp, core/parallel.hpp).
 */

#ifndef UNCERTAIN_CORE_BATCH_PLAN_HPP
#define UNCERTAIN_CORE_BATCH_PLAN_HPP

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/jit/jit_compiler.hpp"
#include "core/jit/jit_form.hpp"
#include "core/simd.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace core {

class GraphNode;
class BatchPlan;

namespace batch {

/**
 * Column storage type for a base type T. Identical to T except for
 * bool, which is widened to one byte so columns expose contiguous
 * writable storage (std::vector<bool> packs bits and has no data()).
 * Kernels read and write Store<T>; the implicit bool <-> uint8_t
 * conversions keep the lifted operators' signatures unchanged.
 */
template <typename T>
struct ColumnStorage
{
    using type = T;
};

template <>
struct ColumnStorage<bool>
{
    using type = std::uint8_t;
};

template <typename T>
using Store = typename ColumnStorage<T>::type;

/** "No column": shared sentinel for column ids and physical slots. */
constexpr std::size_t kNoColumn = static_cast<std::size_t>(-1);

/** Elements processed per strip by a fused kernel. Small enough that
 *  every strip register lives in L1, large enough to amortize the
 *  per-strip micro-op dispatch. */
constexpr std::size_t kStripElems = 256;

/**
 * Alignment of strip registers inside the fused kernel's scratch (and
 * of the scratch block itself). Must cover the widest vector
 * load/store any execution backend issues: 64 bytes spans AVX2 (32),
 * a full cache line, and a future AVX-512 register. Every strip
 * register's byte offset is a multiple of this (regBytes rounds
 * register sizes up to it, so offsets — sums of rounded sizes — stay
 * aligned); stripSrc/stripDst assert that invariant in debug builds.
 */
constexpr std::size_t kStripAlign = 64;
static_assert(kStripAlign >= 64
                  && (kStripAlign & (kStripAlign - 1)) == 0,
              "kStripAlign must be a power of two covering the widest "
              "vector register");

/** Stack scratch per fused kernel; bounds concurrent strip registers
 *  (the fusion pass splits a run into several kernels rather than
 *  exceed it). */
constexpr std::size_t kFusedScratchBytes = std::size_t{32} * 1024;
static_assert(kFusedScratchBytes % kStripAlign == 0,
              "scratch budget must hold a whole number of aligned "
              "strip registers");

} // namespace batch

/** Type-erased base for one column of the workspace. */
class ColumnBase
{
  public:
    virtual ~ColumnBase() = default;

    /** Resize the column to exactly @p n elements. */
    virtual void resize(std::size_t n) = 0;

    /** Current element count. */
    virtual std::size_t size() const = 0;

    /**
     * Grow-only resize: make the column hold at least @p n elements.
     * Never shrinks, so a constant column filled for an earlier,
     * larger block keeps its prefix valid (kernels only ever touch
     * [0, blockLength)).
     */
    void
    ensure(std::size_t n)
    {
        if (size() < n)
            resize(n);
    }

    /**
     * Raw byte pointer to the column's contiguous storage, for the
     * JIT backend's column pointer table. Null means "no flat
     * storage" — such a column can never feed a compiled fragment
     * (the plan only JITs steps over registerable store types, which
     * all come from Column<T> below).
     */
    virtual unsigned char* rawBytes() { return nullptr; }
};

/** A contiguous column of batch::Store<T> values, one per sample. */
template <typename T>
class Column final : public ColumnBase
{
  public:
    using StoreType = batch::Store<T>;

    void resize(std::size_t n) override { values_.resize(n); }
    std::size_t size() const override { return values_.size(); }

    StoreType* data() { return values_.data(); }
    const StoreType* data() const { return values_.data(); }

    unsigned char*
    rawBytes() override
    {
        return reinterpret_cast<unsigned char*>(values_.data());
    }

  private:
    std::vector<StoreType> values_;
};

/**
 * Per-execution state for one block: the physical column storage plus
 * the block's generator. A workspace belongs to one thread at a time;
 * parallel execution gives each worker its own workspace over the
 * same immutable plan.
 *
 * Kernels address columns by *logical* id (the SSA id assigned during
 * lowering and captured in their closures); the workspace indirects
 * through the plan's logical-to-physical slot map. That indirection is
 * what lets the CSE and buffer-reuse passes alias or recycle columns
 * after the closures have been built.
 */
class BatchWorkspace
{
  public:
    BatchWorkspace() = default;
    BatchWorkspace(BatchWorkspace&&) = default;
    BatchWorkspace& operator=(BatchWorkspace&&) = default;
    BatchWorkspace(const BatchWorkspace&) = delete;
    BatchWorkspace& operator=(const BatchWorkspace&) = delete;

    /** Samples in the current block. */
    std::size_t length() const { return length_; }

    /** The typed column for logical id @p index; the type is fixed by
     *  the plan. */
    template <typename T>
    Column<T>&
    column(std::size_t index)
    {
        UNCERTAIN_ASSERT(slots_ != nullptr && index < slots_->size(),
                         "column index out of range");
        const std::size_t phys = (*slots_)[index];
        UNCERTAIN_ASSERT(phys != batch::kNoColumn
                             && phys < columns_.size(),
                         "read of a column the optimizer proved dead");
        auto* typed = static_cast<Column<T>*>(columns_[phys].get());
        return *typed;
    }

    /**
     * Raw byte pointer of logical column @p index, resolved through
     * the slot map like any typed access — the entries of a compiled
     * fragment's column pointer table. Recomputed per block because
     * ensure() may reallocate.
     */
    unsigned char*
    rawColumn(std::size_t index)
    {
        UNCERTAIN_ASSERT(slots_ != nullptr && index < slots_->size(),
                         "column index out of range");
        const std::size_t phys = (*slots_)[index];
        UNCERTAIN_ASSERT(phys != batch::kNoColumn
                             && phys < columns_.size(),
                         "read of a column the optimizer proved dead");
        return columns_[phys]->rawBytes();
    }

    /**
     * The generator for leaf stream @p leafIndex of the current
     * block: blockBase.split(leafIndex), a pure function of (caller
     * snapshot, block start, leaf index).
     */
    Rng
    leafStream(std::uint64_t leafIndex) const
    {
        return blockBase_.split(leafIndex);
    }

  private:
    friend class BatchPlan;

    std::vector<std::unique_ptr<ColumnBase>> columns_; //!< physical
    const std::vector<std::size_t>* slots_ = nullptr;  //!< logical->physical
    std::size_t length_ = 0;
    std::size_t constLength_ = 0; //!< prefix of constant columns filled
    Rng blockBase_{0};
};

/** One compiled kernel: fills its column(s) for the current block. */
using BatchStep = std::function<void(BatchWorkspace&)>;

namespace batch {

/**
 * Where a fused micro-op reads or writes: either a workspace column
 * (addressed at the strip's base offset) or a strip register at a
 * byte offset inside the fused kernel's stack scratch.
 */
struct StripLoc
{
    bool inRegister = false;
    std::size_t column = 0;    //!< logical column id (!inRegister)
    std::size_t regOffset = 0; //!< scratch byte offset (inRegister)

    /**
     * Hint: the column is a hoisted point mass whose object
     * representation is `constBytes` (valid only when `isConst`).
     * Micro-op factories MAY exploit it to broadcast the value in a
     * register instead of streaming the splatted column — the column
     * stays filled either way, so ignoring the hint is always
     * correct. Only set for payloads that fit kConstHintBytes.
     */
    bool isConst = false;
    static constexpr std::size_t kConstHintBytes = 8;
    std::array<unsigned char, kConstHintBytes> constBytes{};
};

/** One micro-op of a fused kernel: process scratch-or-column operands
 *  for elements [base, base + n) of the block. */
using StripOp = std::function<void(BatchWorkspace&, std::size_t base,
                                   std::size_t n, unsigned char*)>;

/** Result of folding one elementwise step at compile time. */
struct FoldedConst
{
    /** Object representation of the folded Store<R> value (CSE key). */
    std::vector<unsigned char> bytes;
    /** Splat kernel writing the folded value over the out column. */
    BatchStep splat;
};

enum class StepKind : std::uint8_t
{
    Leaf,        //!< stochastic source; never merged or folded
    Const,       //!< point mass; filled once per workspace
    Elementwise, //!< pure per-element map over operand columns
    Opaque       //!< unknown semantics; disables the optimizer
};

/**
 * The optimizer-facing description of one lowered step. The `run`
 * closure is the standalone full-block kernel (what executes when no
 * pass touches the step); the remaining fields describe it well
 * enough for the passes to merge, fold, or fuse it.
 */
struct StepInfo
{
    StepKind kind = StepKind::Opaque;
    std::size_t out = kNoColumn;        //!< output logical column
    std::vector<std::size_t> operands;  //!< operand logical columns
    BatchStep run;

    /**
     * True when the functor's *type* fully determines its behaviour
     * (captureless lambdas are empty types; a capturing functor like
     * clamp(lo, hi) is not, because two instances of the same type can
     * hold different state) — the precondition for keying a step by
     * (opType, operands) in the CSE pass.
     */
    bool cseSafe = false;
    std::type_index opType = std::type_index(typeid(void));
    std::type_index outType = std::type_index(typeid(void));

    /** Object representation of a Const step's value; empty when the
     *  payload is not trivially copyable (then the step is still
     *  hoistable but not a CSE/folding source). */
    std::vector<unsigned char> constBytes;

    /** Evaluate the op over constant operand payloads (object
     *  representations, one per operand). Null when not foldable. */
    std::function<FoldedConst(const std::vector<const unsigned char*>&)>
        fold;

    /** Build the strip micro-op for the fusion pass, given operand and
     *  destination locations. Null when the step cannot be fused. */
    std::function<StripOp(const std::vector<StripLoc>&, const StripLoc&)>
        makeStrip;

    /**
     * Lane-parallel variant of makeStrip, present only when the step's
     * functor has a simd::VectorForm mapping. The produced micro-op
     * calls the vector kernel (which clamps to the running CPU and
     * honors simd::setForceScalar), so it is safe on every machine and
     * bit-identical to the scalar strip. The plan picks it over
     * makeStrip when the resolved PlanOptions::backend wants SIMD.
     */
    std::function<StripOp(const std::vector<StripLoc>&, const StripLoc&)>
        makeStripSimd;

    /**
     * Plan-level JIT lowering, present when the functor maps into the
     * fragment emitter's op vocabulary (jit::OpFor). A fused group
     * made entirely of jitable steps can be compiled into one native
     * function per strip; a single non-jitable step in the group
     * refuses the whole group back to the SIMD/scalar strips.
     */
    bool jitable = false;
    jit::Op jitOp = jit::Op::AddF64;
};

namespace detail_ir {

template <typename T>
inline constexpr bool kRegisterable =
    std::is_trivially_copyable_v<Store<T>>
    && std::is_trivially_destructible_v<Store<T>>
    && sizeof(Store<T>) <= kStripAlign;

template <typename T>
std::vector<unsigned char>
objectBytes(const Store<T>& value)
{
    std::vector<unsigned char> bytes(sizeof(Store<T>));
    std::memcpy(bytes.data(), &value, sizeof(Store<T>));
    return bytes;
}

template <typename T>
Store<T>
fromBytes(const unsigned char* bytes)
{
    Store<T> value;
    std::memcpy(&value, bytes, sizeof(Store<T>));
    return value;
}

/** Resolve a strip operand to a typed pointer for the current strip. */
template <typename T>
const Store<T>*
stripSrc(BatchWorkspace& ws, const StripLoc& loc, std::size_t base,
         const unsigned char* scratch)
{
    UNCERTAIN_ASSERT(!loc.inRegister
                         || loc.regOffset % kStripAlign == 0,
                     "strip register offset violates kStripAlign");
    return loc.inRegister
               ? reinterpret_cast<const Store<T>*>(scratch
                                                   + loc.regOffset)
               : ws.template column<T>(loc.column).data() + base;
}

template <typename T>
Store<T>*
stripDst(BatchWorkspace& ws, const StripLoc& loc, std::size_t base,
         unsigned char* scratch)
{
    UNCERTAIN_ASSERT(!loc.inRegister
                         || loc.regOffset % kStripAlign == 0,
                     "strip register offset violates kStripAlign");
    return loc.inRegister
               ? reinterpret_cast<Store<T>*>(scratch + loc.regOffset)
               : ws.template column<T>(loc.column).data() + base;
}

} // namespace detail_ir

/** StepInfo for a point mass of type T splatted over column @p col. */
template <typename T>
StepInfo
makeConstStep(std::size_t col, const T& value)
{
    using S = Store<T>;
    StepInfo info;
    info.kind = StepKind::Const;
    info.out = col;
    // Identity is the *base* type T, not Store<T>: bool and uint8_t
    // share a store type but their Column<T> instantiations differ,
    // so they must never be merged or share a recycled slot.
    info.outType = std::type_index(typeid(T));
    info.run = [col, value](BatchWorkspace& ws) {
        auto* out = ws.template column<T>(col).data();
        const std::size_t n = ws.length();
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<S>(value);
    };
    if constexpr (std::is_trivially_copyable_v<S>) {
        info.constBytes = detail_ir::objectBytes<T>(static_cast<S>(value));
        info.cseSafe = true;
    }
    return info;
}

/** StepInfo for a unary elementwise op R = op(A) into column @p col. */
template <typename R, typename A, typename F>
StepInfo
makeUnaryStep(std::size_t col, std::size_t operand, F op)
{
    using SR = Store<R>;
    StepInfo info;
    info.kind = StepKind::Elementwise;
    info.out = col;
    info.operands = {operand};
    info.opType = std::type_index(typeid(F));
    info.outType = std::type_index(typeid(R));
    info.cseSafe = std::is_empty_v<F>;
    info.run = [col, operand, op](BatchWorkspace& ws) {
        const auto* a = ws.template column<A>(operand).data();
        auto* out = ws.template column<R>(col).data();
        const std::size_t n = ws.length();
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<SR>(op(a[i]));
    };
    if constexpr (detail_ir::kRegisterable<R>
                  && detail_ir::kRegisterable<A>) {
        info.fold =
            [col, op](const std::vector<const unsigned char*>& vals)
            -> FoldedConst {
            const auto a = detail_ir::fromBytes<A>(vals[0]);
            const SR r = static_cast<SR>(op(static_cast<A>(a)));
            FoldedConst folded;
            folded.bytes = detail_ir::objectBytes<R>(r);
            folded.splat = [col, r](BatchWorkspace& ws) {
                auto* out = ws.template column<R>(col).data();
                const std::size_t n = ws.length();
                for (std::size_t i = 0; i < n; ++i)
                    out[i] = r;
            };
            return folded;
        };
        info.makeStrip = [op](const std::vector<StripLoc>& srcs,
                              const StripLoc& dst) -> StripOp {
            const StripLoc sa = srcs[0];
            return [sa, dst, op](BatchWorkspace& ws, std::size_t base,
                                 std::size_t n, unsigned char* scratch) {
                const auto* a =
                    detail_ir::stripSrc<A>(ws, sa, base, scratch);
                auto* out = detail_ir::stripDst<R>(ws, dst, base, scratch);
                for (std::size_t i = 0; i < n; ++i)
                    out[i] = static_cast<SR>(op(a[i]));
            };
        };
        if constexpr (simd::VectorForm<F, R, A>::available) {
            info.makeStripSimd =
                [](const std::vector<StripLoc>& srcs,
                   const StripLoc& dst) -> StripOp {
                const StripLoc sa = srcs[0];
                return [sa, dst](BatchWorkspace& ws, std::size_t base,
                                 std::size_t n,
                                 unsigned char* scratch) {
                    const auto* a =
                        detail_ir::stripSrc<A>(ws, sa, base, scratch);
                    auto* out =
                        detail_ir::stripDst<R>(ws, dst, base, scratch);
                    simd::VectorForm<F, R, A>::run(simd::activeIsa(),
                                                   a, out, n);
                };
            };
        }
        if constexpr (jit::OpFor<F, R, A>::available) {
            info.jitable = true;
            info.jitOp = jit::OpFor<F, R, A>::op;
        }
    }
    return info;
}

/** StepInfo for a binary elementwise op R = op(A, B) into @p col. */
template <typename R, typename A, typename B, typename F>
StepInfo
makeBinaryStep(std::size_t col, std::size_t lhs, std::size_t rhs, F op)
{
    using SR = Store<R>;
    StepInfo info;
    info.kind = StepKind::Elementwise;
    info.out = col;
    info.operands = {lhs, rhs};
    info.opType = std::type_index(typeid(F));
    info.outType = std::type_index(typeid(R));
    info.cseSafe = std::is_empty_v<F>;
    info.run = [col, lhs, rhs, op](BatchWorkspace& ws) {
        const auto* a = ws.template column<A>(lhs).data();
        const auto* b = ws.template column<B>(rhs).data();
        auto* out = ws.template column<R>(col).data();
        const std::size_t n = ws.length();
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<SR>(op(a[i], b[i]));
    };
    if constexpr (detail_ir::kRegisterable<R>
                  && detail_ir::kRegisterable<A>
                  && detail_ir::kRegisterable<B>) {
        info.fold =
            [col, op](const std::vector<const unsigned char*>& vals)
            -> FoldedConst {
            const auto a = detail_ir::fromBytes<A>(vals[0]);
            const auto b = detail_ir::fromBytes<B>(vals[1]);
            const SR r = static_cast<SR>(
                op(static_cast<A>(a), static_cast<B>(b)));
            FoldedConst folded;
            folded.bytes = detail_ir::objectBytes<R>(r);
            folded.splat = [col, r](BatchWorkspace& ws) {
                auto* out = ws.template column<R>(col).data();
                const std::size_t n = ws.length();
                for (std::size_t i = 0; i < n; ++i)
                    out[i] = r;
            };
            return folded;
        };
        info.makeStrip = [op](const std::vector<StripLoc>& srcs,
                              const StripLoc& dst) -> StripOp {
            const StripLoc sa = srcs[0];
            const StripLoc sb = srcs[1];
            return [sa, sb, dst, op](BatchWorkspace& ws,
                                     std::size_t base, std::size_t n,
                                     unsigned char* scratch) {
                const auto* a =
                    detail_ir::stripSrc<A>(ws, sa, base, scratch);
                const auto* b =
                    detail_ir::stripSrc<B>(ws, sb, base, scratch);
                auto* out = detail_ir::stripDst<R>(ws, dst, base, scratch);
                for (std::size_t i = 0; i < n; ++i)
                    out[i] = static_cast<SR>(op(a[i], b[i]));
            };
        };
        if constexpr (simd::VectorForm<F, R, A, B>::available) {
            info.makeStripSimd =
                [](const std::vector<StripLoc>& srcs,
                   const StripLoc& dst) -> StripOp {
                using VF = simd::VectorForm<F, R, A, B>;
                const StripLoc sa = srcs[0];
                const StripLoc sb = srcs[1];
                // When one operand is a hoisted point mass (and its
                // payload fits the StripLoc hint), broadcast it in a
                // register instead of streaming the splatted column —
                // same per-element arithmetic, one fewer load stream.
                if constexpr (requires(simd::Isa isa,
                                       const Store<A>* a, Store<B> b,
                                       Store<R>* o, std::size_t n) {
                                  VF::runConstB(isa, a, b, o, n);
                              }) {
                    if (sb.isConst && !sa.isConst
                        && sizeof(Store<B>)
                               <= StripLoc::kConstHintBytes) {
                        const auto bc = detail_ir::fromBytes<B>(
                            sb.constBytes.data());
                        return [sa, dst, bc](BatchWorkspace& ws,
                                             std::size_t base,
                                             std::size_t n,
                                             unsigned char* scratch) {
                            const auto* a = detail_ir::stripSrc<A>(
                                ws, sa, base, scratch);
                            auto* out = detail_ir::stripDst<R>(
                                ws, dst, base, scratch);
                            VF::runConstB(simd::activeIsa(), a, bc,
                                          out, n);
                        };
                    }
                }
                if constexpr (requires(simd::Isa isa, Store<A> a,
                                       const Store<B>* b, Store<R>* o,
                                       std::size_t n) {
                                  VF::runConstA(isa, a, b, o, n);
                              }) {
                    if (sa.isConst && !sb.isConst
                        && sizeof(Store<A>)
                               <= StripLoc::kConstHintBytes) {
                        const auto ac = detail_ir::fromBytes<A>(
                            sa.constBytes.data());
                        return [sb, dst, ac](BatchWorkspace& ws,
                                             std::size_t base,
                                             std::size_t n,
                                             unsigned char* scratch) {
                            const auto* b = detail_ir::stripSrc<B>(
                                ws, sb, base, scratch);
                            auto* out = detail_ir::stripDst<R>(
                                ws, dst, base, scratch);
                            VF::runConstA(simd::activeIsa(), ac, b,
                                          out, n);
                        };
                    }
                }
                return [sa, sb, dst](BatchWorkspace& ws,
                                     std::size_t base, std::size_t n,
                                     unsigned char* scratch) {
                    const auto* a =
                        detail_ir::stripSrc<A>(ws, sa, base, scratch);
                    const auto* b =
                        detail_ir::stripSrc<B>(ws, sb, base, scratch);
                    auto* out =
                        detail_ir::stripDst<R>(ws, dst, base, scratch);
                    VF::run(simd::activeIsa(), a, b, out, n);
                };
            };
        }
        if constexpr (jit::OpFor<F, R, A, B>::available) {
            info.jitable = true;
            info.jitOp = jit::OpFor<F, R, A, B>::op;
        }
    }
    return info;
}

/** StepInfo for a ternary elementwise op R = op(A, B, C) into @p col. */
template <typename R, typename A, typename B, typename C, typename F>
StepInfo
makeTernaryStep(std::size_t col, std::size_t first, std::size_t second,
                std::size_t third, F op)
{
    using SR = Store<R>;
    StepInfo info;
    info.kind = StepKind::Elementwise;
    info.out = col;
    info.operands = {first, second, third};
    info.opType = std::type_index(typeid(F));
    info.outType = std::type_index(typeid(R));
    info.cseSafe = std::is_empty_v<F>;
    info.run = [col, first, second, third, op](BatchWorkspace& ws) {
        const auto* a = ws.template column<A>(first).data();
        const auto* b = ws.template column<B>(second).data();
        const auto* c = ws.template column<C>(third).data();
        auto* out = ws.template column<R>(col).data();
        const std::size_t n = ws.length();
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<SR>(op(a[i], b[i], c[i]));
    };
    if constexpr (detail_ir::kRegisterable<R>
                  && detail_ir::kRegisterable<A>
                  && detail_ir::kRegisterable<B>
                  && detail_ir::kRegisterable<C>) {
        info.fold =
            [col, op](const std::vector<const unsigned char*>& vals)
            -> FoldedConst {
            const auto a = detail_ir::fromBytes<A>(vals[0]);
            const auto b = detail_ir::fromBytes<B>(vals[1]);
            const auto c = detail_ir::fromBytes<C>(vals[2]);
            const SR r = static_cast<SR>(op(static_cast<A>(a),
                                            static_cast<B>(b),
                                            static_cast<C>(c)));
            FoldedConst folded;
            folded.bytes = detail_ir::objectBytes<R>(r);
            folded.splat = [col, r](BatchWorkspace& ws) {
                auto* out = ws.template column<R>(col).data();
                const std::size_t n = ws.length();
                for (std::size_t i = 0; i < n; ++i)
                    out[i] = r;
            };
            return folded;
        };
        info.makeStrip = [op](const std::vector<StripLoc>& srcs,
                              const StripLoc& dst) -> StripOp {
            const StripLoc sa = srcs[0];
            const StripLoc sb = srcs[1];
            const StripLoc sc = srcs[2];
            return [sa, sb, sc, dst, op](BatchWorkspace& ws,
                                         std::size_t base,
                                         std::size_t n,
                                         unsigned char* scratch) {
                const auto* a =
                    detail_ir::stripSrc<A>(ws, sa, base, scratch);
                const auto* b =
                    detail_ir::stripSrc<B>(ws, sb, base, scratch);
                const auto* c =
                    detail_ir::stripSrc<C>(ws, sc, base, scratch);
                auto* out = detail_ir::stripDst<R>(ws, dst, base, scratch);
                for (std::size_t i = 0; i < n; ++i)
                    out[i] = static_cast<SR>(op(a[i], b[i], c[i]));
            };
        };
        if constexpr (simd::VectorForm<F, R, A, B, C>::available) {
            info.makeStripSimd =
                [](const std::vector<StripLoc>& srcs,
                   const StripLoc& dst) -> StripOp {
                const StripLoc sa = srcs[0];
                const StripLoc sb = srcs[1];
                const StripLoc sc = srcs[2];
                return [sa, sb, sc, dst](BatchWorkspace& ws,
                                         std::size_t base,
                                         std::size_t n,
                                         unsigned char* scratch) {
                    const auto* a =
                        detail_ir::stripSrc<A>(ws, sa, base, scratch);
                    const auto* b =
                        detail_ir::stripSrc<B>(ws, sb, base, scratch);
                    const auto* c =
                        detail_ir::stripSrc<C>(ws, sc, base, scratch);
                    auto* out =
                        detail_ir::stripDst<R>(ws, dst, base, scratch);
                    simd::VectorForm<F, R, A, B, C>::run(
                        simd::activeIsa(), a, b, c, out, n);
                };
            };
        }
        if constexpr (jit::OpFor<F, R, A, B, C>::available) {
            info.jitable = true;
            info.jitOp = jit::OpFor<F, R, A, B, C>::op;
        }
    }
    return info;
}

} // namespace batch

/**
 * Accumulates the flat plan during lowering. Nodes are interned by
 * identity, so a shared subexpression is lowered exactly once and
 * every consumer reads the same column — the SSA form of Figure 8(b).
 */
class BatchBuilder
{
  public:
    /** Column index of @p node if already lowered, else npos. */
    static constexpr std::size_t npos = batch::kNoColumn;

    /** Everything the optimizer needs to know about one column. */
    struct ColumnMeta
    {
        std::function<std::unique_ptr<ColumnBase>()> factory;
        std::type_index storeType = std::type_index(typeid(void));
        std::size_t elemSize = 0;
        bool registerable = false; //!< may live in a strip register
    };

    std::size_t
    find(const GraphNode* node) const
    {
        auto it = index_.find(node);
        return it == index_.end() ? npos : it->second;
    }

    /**
     * Register a fresh column of base type T for @p node and return
     * its index. Must be called after the node's operands are
     * lowered and before its step is appended.
     */
    template <typename T>
    std::size_t
    addColumn(const GraphNode* node)
    {
        UNCERTAIN_ASSERT(find(node) == npos,
                         "node lowered twice despite interning");
        using S = batch::Store<T>;
        const std::size_t id = columns_.size();
        ColumnMeta meta;
        meta.factory =
            [] { return std::unique_ptr<ColumnBase>(new Column<T>()); };
        // Keyed by the base type T (not Store<T>): slot recycling must
        // never hand a Column<bool> to a Column<uint8_t> reader.
        meta.storeType = std::type_index(typeid(T));
        meta.elemSize = sizeof(S);
        meta.registerable = batch::detail_ir::kRegisterable<T>;
        columns_.push_back(std::move(meta));
        index_.emplace(node, id);
        return id;
    }

    /**
     * Claim the next leaf stream index (topological discovery order);
     * each leaf kernel derives its per-block generator from it.
     */
    std::uint64_t nextLeafStream() { return leafCount_++; }

    /** Append the step record for the most recently added column. */
    void addStep(batch::StepInfo step) { steps_.push_back(std::move(step)); }

    /**
     * Append a bare kernel with no step record. Such a step is opaque
     * to the optimizer, which then degrades to the unoptimized plan;
     * kept for custom nodes that predate the step IR.
     */
    void
    addStep(BatchStep step)
    {
        batch::StepInfo info;
        info.kind = batch::StepKind::Opaque;
        info.run = std::move(step);
        steps_.push_back(std::move(info));
    }

    std::size_t columnCount() const { return columns_.size(); }
    std::uint64_t leafCount() const { return leafCount_; }

  private:
    friend class BatchPlan;

    std::unordered_map<const GraphNode*, std::size_t> index_;
    std::vector<ColumnMeta> columns_;
    std::vector<batch::StepInfo> steps_;
    std::uint64_t leafCount_ = 0;
};

/**
 * Optimizer pass toggles. All passes are ON by default; each may be
 * disabled independently (the equivalence suite runs every
 * combination — outputs are bit-identical across all of them).
 */
struct PlanOptions
{
    bool cse = true;             //!< structural common-subexpression merge
    bool constantFolding = true; //!< fold + hoist constant subtrees
    bool fuseElementwise = true; //!< strip-mined elementwise fusion
    bool reuseBuffers = true;    //!< liveness-based column recycling

    /**
     * Execution backend for elementwise strips (orthogonal to the
     * pass toggles; outputs are bit-identical either way). Auto
     * resolves at plan-build time: fused groups compile to native
     * fragments when jit::available(), vector strips when the CPU
     * has a usable vector unit, scalar otherwise. Jit prefers native
     * fragments and falls back per group to the SIMD strips on any
     * emitter refusal; Simd forces the kernel-layer strips (safe
     * everywhere — the kernels emulate missing ISAs in scalar code);
     * Scalar forces the plain interpreter strips.
     */
    simd::ExecBackend backend = simd::ExecBackend::Auto;

    /** Everything off: the literal PR-2-style transcription. */
    static PlanOptions
    disabled()
    {
        PlanOptions options;
        options.cse = false;
        options.constantFolding = false;
        options.fuseElementwise = false;
        options.reuseBuffers = false;
        options.backend = simd::ExecBackend::Scalar;
        return options;
    }
};

/**
 * Per-plan observability: what lowering produced, what each pass did,
 * and the workspace footprint before/after. Exposed through
 * core::inspect::planStats and printed by the benches under --verbose.
 */
struct PlanStats
{
    std::size_t columnsLowered = 0;  //!< logical columns (= graph nodes)
    std::size_t leafColumns = 0;
    std::size_t stepsLowered = 0;
    std::size_t cseMerged = 0;       //!< steps dropped as structural dups
    std::size_t constantsFolded = 0; //!< elementwise steps folded away
    std::size_t constantsHoisted = 0; //!< splats run once per workspace
    std::size_t deadStepsRemoved = 0;
    std::size_t fusedKernels = 0;    //!< fused groups emitted
    std::size_t fusedOps = 0;        //!< elementwise steps inside groups
    std::size_t stepsPerBlock = 0;   //!< kernels executed per block
    std::size_t columnsMaterialized = 0; //!< physical slots allocated
    std::size_t bytesPerSampleLowered = 0;
    std::size_t bytesPerSampleMaterialized = 0;

    /** Backend requested via PlanOptions (auto/simd/scalar). */
    simd::ExecBackend backendRequested = simd::ExecBackend::Auto;
    /** True when the plan compiled vector strips (Auto resolved to
     *  SIMD, or Simd was forced). */
    bool simdStrips = false;
    /** ISA the kernels dispatched to at build time ("scalar", "sse2",
     *  "avx2", "neon"). */
    const char* isa = "scalar";
    /** Doubles per vector register on that ISA (1 when scalar). */
    std::size_t laneWidth = 1;
    /** Elementwise strip ops compiled to the vector kernels. */
    std::size_t simdStripOps = 0;
    /** Elementwise strip ops left on the scalar interpreter loop. */
    std::size_t scalarStripOps = 0;

    /** True when at least one fused group compiled to a native
     *  fragment (backend resolved to the JIT for that group). */
    bool jitStrips = false;
    /** Elementwise strip ops compiled into native fragments. The
     *  simd/scalar op counts above still classify the retained
     *  fallback strips (they execute partial tail strips and cover
     *  forced fallback), so the three counts are not disjoint. */
    std::size_t jitStripOps = 0;
    /** Native fragments this plan uses (compiled or cache-served). */
    std::size_t jitFragments = 0;
    /** Of which were served from the process-wide fragment cache. */
    std::size_t jitFragmentsReused = 0;
    /** Total machine-code bytes across this plan's fragments. */
    std::size_t jitCodeBytes = 0;
    /** Wall-clock nanoseconds spent emitting this plan's fragments
     *  (0 for cache-served ones). */
    std::uint64_t jitCompileNanos = 0;

    /** Peak workspace bytes for a given block size. */
    std::size_t
    peakWorkspaceBytes(std::size_t blockSize) const
    {
        return bytesPerSampleMaterialized * blockSize;
    }

    /** What the same plan would occupy with every pass disabled. */
    std::size_t
    unoptimizedWorkspaceBytes(std::size_t blockSize) const
    {
        return bytesPerSampleLowered * blockSize;
    }

    std::string
    toString() const
    {
        std::ostringstream out;
        out << "plan: " << columnsLowered << " columns ("
            << leafColumns << " leaves) -> " << columnsMaterialized
            << " materialized; steps " << stepsLowered << " -> "
            << stepsPerBlock << "/block"
            << "; cse merged " << cseMerged << ", folded "
            << constantsFolded << ", hoisted " << constantsHoisted
            << ", dead " << deadStepsRemoved << ", fused "
            << fusedOps << " ops into " << fusedKernels << " kernels"
            << "; bytes/sample " << bytesPerSampleLowered << " -> "
            << bytesPerSampleMaterialized << "; backend "
            << simd::backendName(backendRequested) << " -> "
            << (jitStrips ? "jit" : simdStrips ? "simd" : "scalar")
            << " (" << isa << " x" << laneWidth << ", " << simdStripOps
            << " simd / " << scalarStripOps << " scalar strip ops)";
        if (jitFragments > 0) {
            out << "; jit " << jitStripOps << " ops in " << jitFragments
                << " fragments (" << jitFragmentsReused << " cached), "
                << jitCodeBytes << " code bytes, compile "
                << jitCompileNanos / 1000 << " us";
        }
        return out.str();
    }
};

/**
 * Snapshot of a plan's lifetime execution counters: how many blocks
 * and steps have actually been dispatched, and how many strip passes
 * the fused kernels executed — split by backend so SIMD adoption is
 * observable without a profiler (surfaced through planReport).
 * Counters aggregate over every workspace and thread using the plan.
 */
struct PlanExecCounters
{
    std::uint64_t blocksExecuted = 0;
    std::uint64_t stepsDispatched = 0;   //!< kernel invocations
    std::uint64_t stripsExecuted = 0;    //!< strip passes (fused + plain)
    std::uint64_t simdStripsExecuted = 0; //!< of which vector-backed
    std::uint64_t jitStripsExecuted = 0;  //!< of which native fragments
};

/**
 * An immutable compiled plan: ordered kernels plus physical column
 * factories and the logical-to-physical slot map the optimizer
 * produced. Compile once per graph (BatchPlan::compile), execute any
 * number of blocks from any number of threads — runBlock touches only
 * the caller's workspace. The plan keeps the root graph alive so a
 * cache keyed by node identity can never alias a recycled address.
 */
class BatchPlan
{
  public:
    /**
     * Lower the graph rooted at @p root (a NodePtr<T>) into a plan and
     * run the optimizer passes selected by @p options over it.
     * The root's column index is recorded for typed readback.
     */
    template <typename NodeT>
    static std::shared_ptr<const BatchPlan>
    compile(const std::shared_ptr<const NodeT>& root,
            const PlanOptions& options = {})
    {
        UNCERTAIN_REQUIRE(root != nullptr,
                          "BatchPlan::compile requires a root node");
        BatchBuilder builder;
        const std::size_t rootColumn = root->lowerInto(builder);
        return std::shared_ptr<const BatchPlan>(new BatchPlan(
            std::move(builder), rootColumn, options, root));
    }

    /** Logical column id of the root (readback goes through the slot
     *  map like any other access). */
    std::size_t rootColumn() const { return rootColumn_; }

    /** Physical columns a workspace allocates. */
    std::size_t columnCount() const
    {
        return stats_.columnsMaterialized;
    }

    std::size_t leafCount() const
    {
        return static_cast<std::size_t>(leafCount_);
    }

    const PlanStats& stats() const { return stats_; }

    /** A fresh workspace with one column per physical slot. */
    BatchWorkspace
    makeWorkspace() const
    {
        BatchWorkspace ws;
        ws.columns_.reserve(physFactories_.size());
        for (const auto& make : physFactories_)
            ws.columns_.push_back(make());
        ws.slots_ = &slots_;
        return ws;
    }

    /**
     * Fill every live column of @p ws for the block of @p length
     * samples whose first absolute sample index is @p blockStart,
     * deriving leaf streams from @p base per the stream discipline
     * above. Constant columns are (re)filled only when this block is
     * longer than any the workspace has seen.
     */
    void
    runBlock(BatchWorkspace& ws, const Rng& base, std::size_t blockStart,
             std::size_t length) const
    {
        UNCERTAIN_ASSERT(ws.columns_.size() == physFactories_.size()
                             && ws.slots_ == &slots_,
                         "workspace does not belong to this plan");
        ws.length_ = length;
        ws.blockBase_ = base.split(blockStart);
        for (auto& column : ws.columns_)
            column->ensure(length);
        std::uint64_t dispatched = steps_.size();
        if (length > ws.constLength_) {
            for (const auto& step : constSteps_)
                step(ws);
            ws.constLength_ = length;
            dispatched += constSteps_.size();
        }
        for (const auto& step : steps_)
            step(ws);
        ctrBlocks_.fetch_add(1, std::memory_order_relaxed);
        ctrSteps_.fetch_add(dispatched, std::memory_order_relaxed);
    }

    /** Lifetime execution counters (all workspaces, all threads). */
    PlanExecCounters
    execCounters() const
    {
        PlanExecCounters counters;
        counters.blocksExecuted =
            ctrBlocks_.load(std::memory_order_relaxed);
        counters.stepsDispatched =
            ctrSteps_.load(std::memory_order_relaxed);
        counters.stripsExecuted =
            ctrStrips_.load(std::memory_order_relaxed);
        counters.simdStripsExecuted =
            ctrSimdStrips_.load(std::memory_order_relaxed);
        counters.jitStripsExecuted =
            ctrJitStrips_.load(std::memory_order_relaxed);
        return counters;
    }

  private:
    /** One finalized executable step with its column access sets
     *  (canonical logical ids), as consumed by the liveness pass. */
    struct StepExec
    {
        BatchStep run;
        std::vector<std::size_t> reads;
        std::vector<std::size_t> writes;
    };

    BatchPlan(BatchBuilder&& builder, std::size_t rootColumn,
              const PlanOptions& options,
              std::shared_ptr<const GraphNode> keepAlive)
        : leafCount_(builder.leafCount_), rootColumn_(rootColumn),
          keepAlive_(std::move(keepAlive))
    {
        build(std::move(builder.columns_), std::move(builder.steps_),
              options);
    }

    void build(std::vector<BatchBuilder::ColumnMeta>&& metas,
               std::vector<batch::StepInfo>&& steps,
               const PlanOptions& options);

    std::vector<std::function<std::unique_ptr<ColumnBase>()>>
        physFactories_;
    std::vector<std::size_t> slots_; //!< logical -> physical
    std::vector<BatchStep> constSteps_; //!< once per workspace length
    std::vector<BatchStep> steps_;      //!< once per block
    PlanStats stats_;
    std::uint64_t leafCount_;
    std::size_t rootColumn_;
    std::shared_ptr<const GraphNode> keepAlive_;

    // Execution counters; mutable because runBlock is logically const
    // (it mutates only the caller's workspace). Relaxed atomics: the
    // counts are monotonic telemetry with no ordering obligations.
    mutable std::atomic<std::uint64_t> ctrBlocks_{0};
    mutable std::atomic<std::uint64_t> ctrSteps_{0};
    mutable std::atomic<std::uint64_t> ctrStrips_{0};
    mutable std::atomic<std::uint64_t> ctrSimdStrips_{0};
    mutable std::atomic<std::uint64_t> ctrJitStrips_{0};
};

// ---------------------------------------------------------------------
// Optimizer implementation.
// ---------------------------------------------------------------------

inline void
BatchPlan::build(std::vector<BatchBuilder::ColumnMeta>&& metas,
                 std::vector<batch::StepInfo>&& steps,
                 const PlanOptions& options)
{
    using batch::StepInfo;
    using batch::StepKind;

    stats_.columnsLowered = metas.size();
    stats_.leafColumns = static_cast<std::size_t>(leafCount_);
    stats_.stepsLowered = steps.size();
    for (const auto& meta : metas)
        stats_.bytesPerSampleLowered += meta.elemSize;

    // An opaque step may read or write any column, so no pass can
    // reason across it; degrade to the literal transcription.
    const bool optimizable =
        std::all_of(steps.begin(), steps.end(), [](const StepInfo& s) {
            return s.kind != StepKind::Opaque
                   && s.out != batch::kNoColumn;
        });
    const bool cse = options.cse && optimizable;
    const bool fold = options.constantFolding && optimizable;
    const bool fuse = options.fuseElementwise && optimizable;
    const bool reuse = options.reuseBuffers && optimizable;

    // Backend resolution happens once, here: Auto asks the dispatch
    // layer whether a vector unit is actually usable on this machine;
    // Simd always compiles the kernel-layer strips (they clamp to the
    // detected ISA internally, so this is safe everywhere); Scalar
    // always compiles the interpreter strips. Outputs are
    // bit-identical either way — the choice is purely about speed.
    // Jit resolves per fused group below: each group that the
    // fragment emitter accepts runs native code, and every refusal
    // (unsupported op, ISA, W^X failure) falls back to the SIMD
    // strips — so Jit implies wantSimd for the fallback rungs.
    const bool wantSimd =
        options.backend == simd::ExecBackend::Simd
        || options.backend == simd::ExecBackend::Jit
        || (options.backend == simd::ExecBackend::Auto
            && simd::activeIsa() != simd::Isa::Scalar);
    const bool wantJit =
        fuse
        && (options.backend == simd::ExecBackend::Jit
            || options.backend == simd::ExecBackend::Auto)
        && jit::available();
    stats_.backendRequested = options.backend;
    stats_.simdStrips = wantSimd;
    const simd::Isa buildIsa =
        wantSimd ? simd::activeIsa() : simd::Isa::Scalar;
    stats_.isa = simd::isaName(buildIsa);
    stats_.laneWidth = simd::laneWidth(buildIsa);

    // Union-find-lite: rep[c] is the canonical column c was merged
    // into (identity when unmerged). Kernels keep their original ids;
    // the slot map resolves aliases at execution time.
    std::vector<std::size_t> rep(metas.size());
    for (std::size_t i = 0; i < rep.size(); ++i)
        rep[i] = i;
    auto canon = [&rep](std::size_t c) {
        while (rep[c] != c)
            c = rep[c];
        return c;
    };

    // ---- pass 1+2: structural CSE and constant folding -------------
    //
    // One forward scan over the topologically ordered steps. Operands
    // are canonicalized first, so structural equality propagates
    // upward (if a==a' and b==b', then a+b merges with a'+b').
    // Leaves are never keyed: two distinct stochastic leaves stay two
    // draws (Figure 8 SSA semantics). Folding runs in the same scan
    // because a folded step becomes a Const that later steps may fold
    // or merge over.
    std::vector<StepInfo> kept;
    kept.reserve(steps.size());
    if (cse || fold) {
        std::unordered_map<std::string, std::size_t> interned;
        std::unordered_map<std::size_t, std::vector<unsigned char>>
            constOf;
        for (auto& s : steps) {
            for (auto& o : s.operands)
                o = canon(o);
            if (fold && s.kind == StepKind::Elementwise && s.fold
                && !s.operands.empty()) {
                bool allConst = true;
                std::vector<const unsigned char*> vals;
                vals.reserve(s.operands.size());
                for (const auto o : s.operands) {
                    auto it = constOf.find(o);
                    if (it == constOf.end()) {
                        allConst = false;
                        break;
                    }
                    vals.push_back(it->second.data());
                }
                if (allConst) {
                    // Same op applied to the same scalar values the
                    // per-block kernel would see: bit-identical, just
                    // computed once at compile time.
                    batch::FoldedConst folded = s.fold(vals);
                    s.kind = StepKind::Const;
                    s.run = std::move(folded.splat);
                    s.constBytes = std::move(folded.bytes);
                    s.operands.clear();
                    s.fold = nullptr;
                    s.makeStrip = nullptr;
                    s.makeStripSimd = nullptr;
                    s.cseSafe = true;
                    ++stats_.constantsFolded;
                }
            }
            if (cse && s.cseSafe
                && (s.kind == StepKind::Elementwise
                    || s.kind == StepKind::Const)) {
                std::string key;
                key.reserve(64);
                if (s.kind == StepKind::Const) {
                    key.push_back('C');
                    key.append(s.outType.name());
                    key.push_back('\x1f');
                    key.append(
                        reinterpret_cast<const char*>(s.constBytes.data()),
                        s.constBytes.size());
                } else {
                    key.push_back('E');
                    key.append(s.opType.name());
                    key.push_back('\x1f');
                    key.append(s.outType.name());
                    for (const auto o : s.operands) {
                        key.push_back('\x1f');
                        key.append(std::to_string(o));
                    }
                }
                auto ins = interned.emplace(std::move(key), s.out);
                if (!ins.second) {
                    rep[s.out] = ins.first->second;
                    ++stats_.cseMerged;
                    continue; // drop the duplicate step
                }
            }
            if (s.kind == StepKind::Const && !s.constBytes.empty())
                constOf.emplace(s.out, s.constBytes);
            kept.push_back(std::move(s));
        }
    } else {
        kept = std::move(steps);
    }

    const std::size_t rootRep =
        optimizable ? canon(rootColumn_) : rootColumn_;

    // ---- dead-step elimination --------------------------------------
    //
    // Folding and CSE orphan steps (e.g. the point-mass operands of a
    // folded op). Dropping a dead *leaf* is also safe bit-wise: every
    // leaf draws from its own split(streamIndex) stream assigned at
    // lowering, so removing one never shifts another's stream.
    if (cse || fold) {
        std::unordered_set<std::size_t> needed{rootRep};
        std::vector<StepInfo> live;
        live.reserve(kept.size());
        for (std::size_t i = kept.size(); i-- > 0;) {
            if (needed.count(kept[i].out) == 0) {
                ++stats_.deadStepsRemoved;
                continue;
            }
            for (const auto o : kept[i].operands)
                needed.insert(o);
            live.push_back(std::move(kept[i]));
        }
        std::reverse(live.begin(), live.end());
        kept = std::move(live);
    }

    // ---- constant hoisting ------------------------------------------
    //
    // Point-mass splats are pure functions of the block length, so
    // run them once per workspace (re-running only when a longer
    // block arrives) instead of once per block. Hoisted columns are
    // pinned by the liveness pass: they are never recycled, because
    // they are not refilled per block.
    std::vector<char> constCol(metas.size(), 0);
    // Small const payloads ride along as StripLoc hints so the
    // fusion pass can emit broadcast-constant micro-ops.
    std::vector<std::array<unsigned char, batch::StripLoc::kConstHintBytes>>
        constHint(metas.size());
    std::vector<char> constHintValid(metas.size(), 0);
    std::vector<StepInfo> mainSteps;
    mainSteps.reserve(kept.size());
    for (auto& s : kept) {
        if (fold && s.kind == StepKind::Const) {
            constCol[s.out] = 1;
            if (!s.constBytes.empty()
                && s.constBytes.size()
                       <= batch::StripLoc::kConstHintBytes) {
                std::copy(s.constBytes.begin(), s.constBytes.end(),
                          constHint[s.out].begin());
                constHintValid[s.out] = 1;
            }
            constSteps_.push_back(std::move(s.run));
            ++stats_.constantsHoisted;
        } else {
            mainSteps.push_back(std::move(s));
        }
    }

    // ---- elementwise fusion -----------------------------------------
    //
    // Maximal runs of consecutive elementwise steps become one
    // strip-mined kernel: the block is processed in strips of
    // kStripElems elements, each micro-op handling one strip before
    // the next op runs, so intermediate values are L1-hot. A value
    // consumed only inside its run lives in a stack register and
    // never touches its column at all. Per-element arithmetic and
    // order are unchanged — fusion only reorders *which elements* are
    // computed when, never what is computed — so results stay
    // bit-identical.
    std::vector<std::vector<std::size_t>> readers(metas.size());
    for (std::size_t k = 0; k < mainSteps.size(); ++k)
        for (const auto o : mainSteps[k].operands)
            readers[o].push_back(k);

    auto regBytes = [](std::size_t elemSize) {
        // Rounding every register size to kStripAlign keeps every
        // register *offset* (a sum of such sizes) aligned for vector
        // loads/stores; stripSrc/stripDst assert it in debug builds.
        const std::size_t raw = batch::kStripElems * elemSize;
        return (raw + batch::kStripAlign - 1)
               / batch::kStripAlign * batch::kStripAlign;
    };
    auto consumedOutside = [&](std::size_t out, std::size_t begin,
                               std::size_t end) {
        if (out == rootRep)
            return true;
        for (const auto k : readers[out])
            if (k < begin || k >= end)
                return true;
        return false;
    };

    std::vector<StepExec> execs;
    execs.reserve(mainSteps.size());

    auto* ctrStrips = &ctrStrips_;
    auto* ctrSimdStrips = &ctrSimdStrips_;
    auto* ctrJitStrips = &ctrJitStrips_;

    // Column operand as a StripLoc, carrying the const-broadcast hint
    // when the column is a hoisted point mass with a small payload.
    auto columnLoc = [&](std::size_t o) {
        batch::StripLoc loc;
        loc.column = o;
        if (constCol[o] && constHintValid[o]) {
            loc.isConst = true;
            loc.constBytes = constHint[o];
        }
        return loc;
    };

    auto emitPlain = [&](std::size_t k) {
        StepExec e;
        auto& s = mainSteps[k];
        if (wantSimd && s.kind == StepKind::Elementwise
            && s.makeStripSimd != nullptr) {
            // Unfused vectorizable step: run its vector micro-op over
            // the whole column as a single strip (no scratch needed —
            // both ends are columns).
            std::vector<batch::StripLoc> srcs;
            srcs.reserve(s.operands.size());
            for (const auto o : s.operands)
                srcs.push_back(columnLoc(o));
            const batch::StripLoc dst{false, s.out, 0};
            batch::StripOp op = s.makeStripSimd(srcs, dst);
            e.run = [op = std::move(op), ctrStrips,
                     ctrSimdStrips](BatchWorkspace& ws) {
                op(ws, 0, ws.length(), nullptr);
                ctrStrips->fetch_add(1, std::memory_order_relaxed);
                ctrSimdStrips->fetch_add(1, std::memory_order_relaxed);
            };
            ++stats_.simdStripOps;
        } else {
            if (s.kind == StepKind::Elementwise)
                ++stats_.scalarStripOps;
            e.run = std::move(s.run);
        }
        e.reads = s.operands;
        e.writes = {s.out};
        execs.push_back(std::move(e));
    };

    auto emitGroup = [&](std::size_t a, std::size_t b) {
        if (b - a < 2) {
            for (std::size_t k = a; k < b; ++k)
                emitPlain(k);
            return;
        }
        // Last in-group use per column, for register lifetime.
        std::unordered_map<std::size_t, std::size_t> lastUse;
        for (std::size_t k = a; k < b; ++k)
            for (const auto o : mainSteps[k].operands)
                lastUse[o] = k;
        std::unordered_map<std::size_t, std::size_t> regOffsetOf;
        std::map<std::size_t, std::vector<std::size_t>> freeBySize;
        std::size_t top = 0;
        std::vector<batch::StripOp> ops;
        ops.reserve(b - a);
        bool groupHasSimd = false;
        StepExec e;
        // JIT accumulation: translate each step's strip locations into
        // the fragment compiler's operand vocabulary while the
        // fallback micro-ops are built. One non-jitable step refuses
        // the whole group — a fragment replaces the per-step dispatch
        // loop entirely or not at all.
        bool groupJitable = wantJit;
        std::vector<jit::GroupStep> jitSteps;
        std::vector<std::size_t> tableCols; //!< slot -> logical column
        std::unordered_map<std::size_t, std::uint32_t> slotOf;
        auto jitOperand = [&](const batch::StripLoc& loc) {
            jit::Operand o;
            if (loc.inRegister) {
                o.kind = jit::Operand::Kind::Scratch;
                o.index = static_cast<std::uint32_t>(loc.regOffset);
                return o;
            }
            if (loc.isConst) {
                // The hoisted point mass stays pinned in a register
                // inside the fragment; the column is never streamed
                // (it stays filled, exactly like the kernel layer's
                // broadcast-constant forms).
                o.kind = jit::Operand::Kind::Const;
                std::uint64_t bits = 0;
                std::memcpy(&bits, loc.constBytes.data(),
                            batch::StripLoc::kConstHintBytes);
                o.constBits = bits;
                return o;
            }
            o.kind = jit::Operand::Kind::Column;
            auto it = slotOf.find(loc.column);
            if (it == slotOf.end()) {
                it = slotOf
                         .emplace(loc.column,
                                  static_cast<std::uint32_t>(
                                      tableCols.size()))
                         .first;
                tableCols.push_back(loc.column);
            }
            o.index = it->second;
            return o;
        };
        for (std::size_t k = a; k < b; ++k) {
            auto& s = mainSteps[k];
            std::vector<batch::StripLoc> srcs;
            srcs.reserve(s.operands.size());
            for (const auto o : s.operands) {
                auto it = regOffsetOf.find(o);
                if (it != regOffsetOf.end()) {
                    srcs.push_back({true, 0, it->second});
                } else {
                    srcs.push_back(columnLoc(o));
                    e.reads.push_back(o);
                }
            }
            batch::StripLoc dst;
            const bool external = consumedOutside(s.out, a, b);
            if (external) {
                dst = {false, s.out, 0};
                e.writes.push_back(s.out);
            } else {
                const std::size_t size = regBytes(metas[s.out].elemSize);
                auto& freeList = freeBySize[size];
                std::size_t offset;
                if (!freeList.empty()) {
                    offset = freeList.back();
                    freeList.pop_back();
                } else {
                    offset = top;
                    top += size;
                }
                regOffsetOf[s.out] = offset;
                dst = {true, 0, offset};
            }
            const bool useSimd =
                wantSimd && s.makeStripSimd != nullptr;
            ops.push_back(useSimd ? s.makeStripSimd(srcs, dst)
                                  : s.makeStrip(srcs, dst));
            if (useSimd) {
                groupHasSimd = true;
                ++stats_.simdStripOps;
            } else {
                ++stats_.scalarStripOps;
            }
            if (groupJitable) {
                if (!s.jitable || s.operands.size() > 3) {
                    groupJitable = false;
                } else {
                    jit::GroupStep js;
                    js.op = s.jitOp;
                    js.arity =
                        static_cast<std::uint8_t>(s.operands.size());
                    for (std::size_t i = 0; i < s.operands.size(); ++i)
                        js.src[i] = jitOperand(srcs[i]);
                    js.dst = jitOperand(dst);
                    jitSteps.push_back(js);
                }
            }
            auto release = [&](std::size_t col) {
                auto rit = regOffsetOf.find(col);
                if (rit == regOffsetOf.end())
                    return;
                auto lit = lastUse.find(col);
                if (lit == lastUse.end() || lit->second <= k) {
                    freeBySize[regBytes(metas[col].elemSize)].push_back(
                        rit->second);
                    regOffsetOf.erase(rit);
                }
            };
            for (const auto o : s.operands)
                release(o);
            if (!external && lastUse.count(s.out) == 0)
                release(s.out); // written, never read: dead store
        }
        UNCERTAIN_ASSERT(top <= batch::kFusedScratchBytes,
                         "fused group exceeds scratch budget");
        std::sort(e.reads.begin(), e.reads.end());
        e.reads.erase(std::unique(e.reads.begin(), e.reads.end()),
                      e.reads.end());
        std::shared_ptr<const jit::Fragment> frag;
        if (groupJitable && tableCols.size() <= jit::kMaxColumnSlots) {
            const jit::CompileResult compiled = jit::compileGroup(
                jitSteps, tableCols.size(), batch::kStripElems);
            if (compiled.fragment != nullptr) {
                frag = compiled.fragment;
                stats_.jitStrips = true;
                stats_.jitStripOps += b - a;
                ++stats_.jitFragments;
                if (compiled.cacheHit)
                    ++stats_.jitFragmentsReused;
                stats_.jitCodeBytes += frag->codeBytes();
                stats_.jitCompileNanos += compiled.compileNanos;
            }
        }
        if (frag != nullptr) {
            // Native fast path: one call per full strip replaces the
            // whole per-op dispatch loop. Partial tail strips (block
            // length not a multiple of kStripElems) run the retained
            // fallback micro-ops — same arithmetic, same bits.
            e.run = [ops = std::move(ops), frag,
                     tableCols = std::move(tableCols), ctrStrips,
                     ctrSimdStrips, ctrJitStrips,
                     groupHasSimd](BatchWorkspace& ws) {
                unsigned char* cols[jit::kMaxColumnSlots];
                for (std::size_t i = 0; i < tableCols.size(); ++i)
                    cols[i] = ws.rawColumn(tableCols[i]);
                const jit::Fragment::Fn fn = frag->fn();
                const std::size_t len = ws.length();
                std::size_t base = 0;
                std::uint64_t strips = 0;
                for (; base + batch::kStripElems <= len;
                     base += batch::kStripElems) {
                    fn(cols, base);
                    ++strips;
                }
                ctrJitStrips->fetch_add(strips,
                                        std::memory_order_relaxed);
                if (base < len) {
                    alignas(batch::kStripAlign) unsigned char
                        scratch[batch::kFusedScratchBytes];
                    for (const auto& op : ops)
                        op(ws, base, len - base, scratch);
                    ++strips;
                    if (groupHasSimd)
                        ctrSimdStrips->fetch_add(
                            1, std::memory_order_relaxed);
                }
                ctrStrips->fetch_add(strips, std::memory_order_relaxed);
            };
        } else {
            e.run = [ops = std::move(ops), ctrStrips, ctrSimdStrips,
                     groupHasSimd](BatchWorkspace& ws) {
                alignas(batch::kStripAlign)
                    unsigned char scratch[batch::kFusedScratchBytes];
                const std::size_t len = ws.length();
                std::uint64_t strips = 0;
                for (std::size_t base = 0; base < len;
                     base += batch::kStripElems) {
                    const std::size_t n =
                        std::min(batch::kStripElems, len - base);
                    for (const auto& op : ops)
                        op(ws, base, n, scratch);
                    ++strips;
                }
                ctrStrips->fetch_add(strips, std::memory_order_relaxed);
                if (groupHasSimd)
                    ctrSimdStrips->fetch_add(strips,
                                             std::memory_order_relaxed);
            };
        }
        execs.push_back(std::move(e));
        ++stats_.fusedKernels;
        stats_.fusedOps += b - a;
    };

    if (fuse) {
        // Partition each maximal fusable run into groups bounded by
        // the scratch budget. The grouping simulation treats values
        // consumed outside the *run* as columns; per-group allocation
        // later treats values consumed outside the *group* as columns
        // — a superset, so the real register pressure can only be
        // lower than simulated and the budget holds.
        std::size_t runStart = batch::kNoColumn;
        auto flushRun = [&](std::size_t begin, std::size_t end) {
            std::unordered_map<std::size_t, std::size_t> lastUseInRun;
            for (std::size_t k = begin; k < end; ++k)
                for (const auto o : mainSteps[k].operands)
                    lastUseInRun[o] = k;
            std::unordered_map<std::size_t, std::size_t> regSize;
            std::size_t used = 0;
            std::size_t groupStart = begin;
            for (std::size_t k = begin; k < end; ++k) {
                const std::size_t out = mainSteps[k].out;
                const bool external = consumedOutside(out, begin, end);
                std::size_t need =
                    external ? 0 : regBytes(metas[out].elemSize);
                if (used + need > batch::kFusedScratchBytes
                    && k > groupStart) {
                    emitGroup(groupStart, k);
                    groupStart = k;
                    regSize.clear();
                    used = 0;
                }
                if (need > 0) {
                    regSize[out] = need;
                    used += need;
                }
                for (const auto o : mainSteps[k].operands) {
                    auto it = regSize.find(o);
                    auto lit = lastUseInRun.find(o);
                    if (it != regSize.end() && lit != lastUseInRun.end()
                        && lit->second <= k) {
                        used -= it->second;
                        regSize.erase(it);
                    }
                }
            }
            emitGroup(groupStart, end);
        };
        for (std::size_t k = 0; k < mainSteps.size(); ++k) {
            const bool fusable =
                mainSteps[k].kind == StepKind::Elementwise
                && mainSteps[k].makeStrip != nullptr;
            if (fusable) {
                if (runStart == batch::kNoColumn)
                    runStart = k;
                continue;
            }
            if (runStart != batch::kNoColumn) {
                flushRun(runStart, k);
                runStart = batch::kNoColumn;
            }
            emitPlain(k);
        }
        if (runStart != batch::kNoColumn)
            flushRun(runStart, mainSteps.size());
    } else {
        for (std::size_t k = 0; k < mainSteps.size(); ++k)
            emitPlain(k);
    }

    // ---- liveness-based slot assignment -----------------------------
    //
    // Without reuse: one physical column per logical column (the
    // PR-2 memory shape), aliases resolved through the slot map.
    // With reuse: linear scan over the final step order; a column's
    // slot returns to a per-type free pool after its last reading
    // step, so the workspace holds O(live width) columns. Slots are
    // released only *after* the releasing step completes, so a step
    // never reads and writes the same physical slot through different
    // logical columns. Constant columns and the root are pinned.
    slots_.assign(metas.size(), batch::kNoColumn);
    if (!reuse) {
        physFactories_.reserve(metas.size());
        for (auto& meta : metas)
            physFactories_.push_back(std::move(meta.factory));
        for (std::size_t i = 0; i < metas.size(); ++i)
            slots_[i] = optimizable ? canon(i) : i;
        stats_.columnsMaterialized = metas.size();
        stats_.bytesPerSampleMaterialized = stats_.bytesPerSampleLowered;
    } else {
        std::vector<std::size_t> slotOf(metas.size(), batch::kNoColumn);
        std::vector<std::size_t> physSize;
        std::unordered_map<std::type_index, std::vector<std::size_t>>
            pool;
        auto assignSlot = [&](std::size_t col) {
            if (slotOf[col] != batch::kNoColumn)
                return;
            auto& freeList = pool[metas[col].storeType];
            if (!freeList.empty()) {
                slotOf[col] = freeList.back();
                freeList.pop_back();
            } else {
                slotOf[col] = physFactories_.size();
                physFactories_.push_back(std::move(metas[col].factory));
                physSize.push_back(metas[col].elemSize);
            }
        };
        std::vector<char> pinned(metas.size(), 0);
        if (rootRep < pinned.size())
            pinned[rootRep] = 1;
        for (std::size_t c = 0; c < metas.size(); ++c) {
            if (constCol[c]) {
                pinned[c] = 1;
                assignSlot(c); // hoisted splat defines it pre-block
            }
        }
        // Last step touching each column (reads; a write with no
        // later read dies at its defining step).
        std::vector<std::size_t> lastUse(metas.size(), 0);
        for (std::size_t k = 0; k < execs.size(); ++k) {
            for (const auto w : execs[k].writes)
                lastUse[w] = std::max(lastUse[w], k);
            for (const auto r : execs[k].reads)
                lastUse[r] = std::max(lastUse[r], k);
        }
        std::vector<char> released(metas.size(), 0);
        for (std::size_t k = 0; k < execs.size(); ++k) {
            for (const auto w : execs[k].writes)
                assignSlot(w);
            auto maybeRelease = [&](std::size_t col) {
                if (pinned[col] || released[col]
                    || slotOf[col] == batch::kNoColumn
                    || lastUse[col] != k)
                    return;
                released[col] = 1;
                pool[metas[col].storeType].push_back(slotOf[col]);
            };
            for (const auto r : execs[k].reads)
                maybeRelease(r);
            for (const auto w : execs[k].writes)
                maybeRelease(w);
        }
        for (std::size_t i = 0; i < metas.size(); ++i)
            slots_[i] = slotOf[canon(i)];
        stats_.columnsMaterialized = physFactories_.size();
        for (const auto size : physSize)
            stats_.bytesPerSampleMaterialized += size;
    }

    steps_.reserve(execs.size());
    for (auto& e : execs)
        steps_.push_back(std::move(e.run));
    stats_.stepsPerBlock = steps_.size();
}

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_BATCH_PLAN_HPP
