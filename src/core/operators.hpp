/**
 * @file
 * The lifted operator algebra of Table 1.
 *
 * Math   (+ - * /)      :: U<T> -> U<T> -> U<T>
 * Order  (< > <= >=)    :: U<T> -> U<T> -> U<bool>
 * Equality (== !=)      :: U<T> -> U<T> -> U<bool>  (see caveat below)
 * Logical (&& || !)     :: U<bool> -> U<bool> -> U<bool>
 *
 * Mixed base types are supported exactly as the paper describes
 * ("a lifted operator may have any type"): the result base type is
 * whatever the underlying C++ operator produces, so for example
 * Uncertain<int> / Uncertain<int> with a double-producing functor is
 * expressible via lift().
 *
 * Plain values mix freely with uncertain ones; they are coerced to
 * point masses (section 3.3).
 *
 * Caveats mirroring the paper:
 *  - `==` between continuous variables is almost surely false, just
 *    as exact float equality is meaningless; use approxEqual() or
 *    compare with E(). `==` is meaningful for discrete base types.
 *  - `&&`/`||` on Uncertain<bool> cannot short-circuit; both operand
 *    networks are evaluated within each sampling pass (sharing draws
 *    via the epoch cache, so `x && x` is exactly `x`).
 */

#ifndef UNCERTAIN_CORE_OPERATORS_HPP
#define UNCERTAIN_CORE_OPERATORS_HPP

#include <cmath>
#include <string>
#include <type_traits>
#include <utility>

#include "core/ops.hpp"
#include "core/uncertain.hpp"

namespace uncertain {

namespace core {

/**
 * Lift an arbitrary binary function over two uncertain operands,
 * constructing the corresponding inner node.
 */
template <typename F, typename A, typename B>
auto
liftBinary(F f, const Uncertain<A>& a, const Uncertain<B>& b,
           std::string label = "apply")
    -> Uncertain<std::decay_t<std::invoke_result_t<F, A, B>>>
{
    using R = std::decay_t<std::invoke_result_t<F, A, B>>;
    return Uncertain<R>(std::make_shared<core::BinaryNode<R, A, B, F>>(
        a.node(), b.node(), std::move(f), std::move(label)));
}

/** Lift an arbitrary unary function (same as Uncertain::map). */
template <typename F, typename A>
auto
liftUnary(F f, const Uncertain<A>& a, std::string label = "apply")
    -> Uncertain<std::decay_t<std::invoke_result_t<F, A>>>
{
    return a.map(std::move(f), std::move(label));
}

/**
 * Lift an arbitrary ternary function over three uncertain operands.
 * The basis of uncertain::select (core/functions.hpp).
 */
template <typename F, typename A, typename B, typename C>
auto
liftTernary(F f, const Uncertain<A>& a, const Uncertain<B>& b,
            const Uncertain<C>& c, std::string label = "apply")
    -> Uncertain<std::decay_t<std::invoke_result_t<F, A, B, C>>>
{
    using R = std::decay_t<std::invoke_result_t<F, A, B, C>>;
    return Uncertain<R>(
        std::make_shared<core::TernaryNode<R, A, B, C, F>>(
            a.node(), b.node(), c.node(), std::move(f),
            std::move(label)));
}

} // namespace core

// ----------------------------------------------------------------------
// Arithmetic operators.
// ----------------------------------------------------------------------

// The lifted functors are the *named* types in core/ops.hpp rather
// than per-macro lambdas: the batch plan recognizes a step's operator
// by type (std::type_index) and maps it to a vector kernel via
// simd::VectorForm. The arithmetic is identical to the old lambdas.

#define UNCERTAIN_DEFINE_BINARY_OP(symbol, label, functor)                 \
    template <typename A, typename B>                                     \
        requires requires(A a, B b) { a symbol b; }                       \
    auto operator symbol(const Uncertain<A>& a, const Uncertain<B>& b)    \
    {                                                                     \
        return core::liftBinary(core::ops::functor{}, a, b, label);       \
    }                                                                     \
    template <typename A, core::NotUncertain B>                           \
        requires requires(A a, B b) { a symbol b; }                       \
    auto operator symbol(const Uncertain<A>& a, const B& b)               \
    {                                                                     \
        return a symbol Uncertain<std::decay_t<B>>(b);                    \
    }                                                                     \
    template <core::NotUncertain A, typename B>                           \
        requires requires(A a, B b) { a symbol b; }                       \
    auto operator symbol(const A& a, const Uncertain<B>& b)               \
    {                                                                     \
        return Uncertain<std::decay_t<A>>(a) symbol b;                    \
    }

UNCERTAIN_DEFINE_BINARY_OP(+, "+", Add)
UNCERTAIN_DEFINE_BINARY_OP(-, "-", Sub)
UNCERTAIN_DEFINE_BINARY_OP(*, "*", Mul)
UNCERTAIN_DEFINE_BINARY_OP(/, "/", Div)

// ----------------------------------------------------------------------
// Order and equality operators: U<T> -> U<T> -> U<bool>.
// ----------------------------------------------------------------------

#define UNCERTAIN_DEFINE_COMPARE_OP(symbol, label, functor)                \
    template <typename A, typename B>                                     \
        requires requires(A a, B b) {                                     \
            { a symbol b } -> std::convertible_to<bool>;                  \
        }                                                                 \
    Uncertain<bool> operator symbol(const Uncertain<A>& a,               \
                                    const Uncertain<B>& b)                \
    {                                                                     \
        return core::liftBinary(core::ops::functor{}, a, b, label);       \
    }                                                                     \
    template <typename A, core::NotUncertain B>                           \
        requires requires(A a, B b) {                                     \
            { a symbol b } -> std::convertible_to<bool>;                  \
        }                                                                 \
    Uncertain<bool> operator symbol(const Uncertain<A>& a, const B& b)    \
    {                                                                     \
        return a symbol Uncertain<std::decay_t<B>>(b);                    \
    }                                                                     \
    template <core::NotUncertain A, typename B>                           \
        requires requires(A a, B b) {                                     \
            { a symbol b } -> std::convertible_to<bool>;                  \
        }                                                                 \
    Uncertain<bool> operator symbol(const A& a, const Uncertain<B>& b)    \
    {                                                                     \
        return Uncertain<std::decay_t<A>>(a) symbol b;                    \
    }

UNCERTAIN_DEFINE_COMPARE_OP(<, "<", Lt)
UNCERTAIN_DEFINE_COMPARE_OP(>, ">", Gt)
UNCERTAIN_DEFINE_COMPARE_OP(<=, "<=", Le)
UNCERTAIN_DEFINE_COMPARE_OP(>=, ">=", Ge)
UNCERTAIN_DEFINE_COMPARE_OP(==, "==", Eq)
UNCERTAIN_DEFINE_COMPARE_OP(!=, "!=", Ne)

#undef UNCERTAIN_DEFINE_BINARY_OP
#undef UNCERTAIN_DEFINE_COMPARE_OP

// ----------------------------------------------------------------------
// Logical operators on Uncertain<bool>. No short-circuiting: the
// joint event is evaluated per sampling pass.
// ----------------------------------------------------------------------

inline Uncertain<bool>
operator&&(const Uncertain<bool>& a, const Uncertain<bool>& b)
{
    return core::liftBinary(core::ops::And{}, a, b, "and");
}

inline Uncertain<bool>
operator&&(bool a, const Uncertain<bool>& b)
{
    return Uncertain<bool>(a) && b;
}

inline Uncertain<bool>
operator&&(const Uncertain<bool>& a, bool b)
{
    return a && Uncertain<bool>(b);
}

inline Uncertain<bool>
operator||(const Uncertain<bool>& a, const Uncertain<bool>& b)
{
    return core::liftBinary(core::ops::Or{}, a, b, "or");
}

inline Uncertain<bool>
operator||(bool a, const Uncertain<bool>& b)
{
    return Uncertain<bool>(a) || b;
}

inline Uncertain<bool>
operator||(const Uncertain<bool>& a, bool b)
{
    return a || Uncertain<bool>(b);
}

inline Uncertain<bool>
operator!(const Uncertain<bool>& a)
{
    return a.map(core::ops::Not{}, "not");
}

/** Unary negation of a numeric uncertain value. */
template <typename A>
    requires requires(A a) { -a; }
auto
operator-(const Uncertain<A>& a)
{
    return a.map(core::ops::Neg{}, "negate");
}

// ----------------------------------------------------------------------
// Equality helpers for continuous base types.
// ----------------------------------------------------------------------

/**
 * Tolerant equality: Pr[|a - b| <= halfWidth]. The usable analogue of
 * `==` for continuous variables (an exact equality event has
 * probability zero). With halfWidth = 0.5 this is "rounds to the
 * same integer" and matches the Game of Life birth rule
 * `NumLive == 3` for real-valued neighbor counts.
 */
template <typename A, typename B>
    requires requires(A a, B b) { a - b; }
Uncertain<bool>
approxEqual(const Uncertain<A>& a, const Uncertain<B>& b,
            double halfWidth)
{
    return core::liftBinary(
        [halfWidth](const A& x, const B& y) -> bool {
            return std::fabs(static_cast<double>(x - y)) <= halfWidth;
        },
        a, b, "approx==");
}

template <typename A, core::NotUncertain B>
    requires requires(A a, B b) { a - b; }
Uncertain<bool>
approxEqual(const Uncertain<A>& a, const B& b, double halfWidth)
{
    return approxEqual(a, Uncertain<std::decay_t<B>>(b), halfWidth);
}

} // namespace uncertain

#endif // UNCERTAIN_CORE_OPERATORS_HPP
