#include "core/node.hpp"

#include <unordered_set>

namespace uncertain {
namespace core {

// Epoch 0 is reserved as "never sampled" in the node caches.
std::atomic<std::uint64_t> SampleContext::nextEpoch_{1};

std::size_t
GraphNode::graphSize() const
{
    std::unordered_set<const GraphNode*> seen;
    std::vector<const GraphNode*> stack{this};
    while (!stack.empty()) {
        const GraphNode* node = stack.back();
        stack.pop_back();
        if (!seen.insert(node).second)
            continue;
        for (const auto& child : node->children())
            stack.push_back(child.get());
    }
    return seen.size();
}

} // namespace core
} // namespace uncertain
