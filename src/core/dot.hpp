/**
 * @file
 * Graphviz DOT export of a variable's Bayesian network, for
 * debugging and documentation (the paper's Figures 7 and 8).
 */

#ifndef UNCERTAIN_CORE_DOT_HPP
#define UNCERTAIN_CORE_DOT_HPP

#include <string>

#include "core/node.hpp"
#include "core/uncertain.hpp"

namespace uncertain {
namespace core {

/** Render the network rooted at @p root as a DOT digraph. */
std::string toDot(const GraphNode& root);

/** Render the network of @p value as a DOT digraph. */
template <typename T>
std::string
toDot(const Uncertain<T>& value)
{
    return toDot(*value.node());
}

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_DOT_HPP
