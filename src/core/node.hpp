/**
 * @file
 * Bayesian-network node graph underlying Uncertain<T>.
 *
 * Lifted operators do not compute values; they build a directed
 * acyclic graph whose leaves are known distributions (sampling
 * functions supplied by expert developers) and whose inner nodes are
 * the base-type operators (paper section 3.3). The graph is sampled
 * lazily at conditionals by ancestral sampling (section 4.2): a fresh
 * epoch is opened, and every node's value is memoized for the
 * duration of that epoch. The epoch memo is what makes shared
 * subexpressions statistically correct — both occurrences of X in
 * (Y + X) + X see the same draw, yielding the correct network of
 * Figure 8(b).
 *
 * The memo lives in the SampleContext, not in the node: nodes are
 * fully immutable after construction, so any number of contexts (and
 * therefore threads) may sample one shared graph concurrently, each
 * with its own private memo table. See core/parallel.hpp for the
 * batch engine built on this property.
 *
 * Besides the per-sample tree walk, every node knows how to lower
 * itself into the columnar batch plan of core/batch_plan.hpp
 * (Node::lowerInto): leaves become bulk-fill kernels over one Rng
 * stream per leaf, inner nodes become element-wise kernels over their
 * operand columns. The interning in BatchBuilder gives shared
 * subexpressions a single column, which is the batch engine's version
 * of the epoch memo.
 *
 * A third lowering (Node::lowerExact) targets the enumeration backend
 * of src/exact: nodes become joint support tables, giving pr() and
 * pmf queries in closed form for finite-support graphs. Nodes without
 * an exact semantics (opaque sampler leaves, pools) refuse via
 * exact::Unsupported, which routes the question back to sampling.
 */

#ifndef UNCERTAIN_CORE_NODE_HPP
#define UNCERTAIN_CORE_NODE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/batch_plan.hpp"
#include "exact/enumeration.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace core {

class GraphNode;

/**
 * One ancestral-sampling pass over a graph. Construct it once per
 * batch of draws; call newEpoch() before each root sample. Epoch
 * numbers are globally unique so memo entries never alias across
 * contexts.
 *
 * The context owns the per-epoch memo table (keyed by node identity),
 * so sampling mutates only the context — never the graph. One context
 * belongs to one thread at a time; concurrent sampling of a shared
 * graph is done by giving each thread its own context (see the
 * concurrency contract in docs/API.md).
 */
class SampleContext
{
  public:
    explicit SampleContext(Rng& rng) : rng_(&rng) { newEpoch(); }

    SampleContext(const SampleContext&) = delete;
    SampleContext& operator=(const SampleContext&) = delete;

    Rng& rng() { return *rng_; }
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Point this context at a different generator. Used by the batch
     * engines to give each sample index its own split() stream while
     * reusing one memo table for the whole chunk.
     */
    void rebindRng(Rng& rng) { rng_ = &rng; }

    /** Open a new epoch: invalidates every memoized draw. */
    void
    newEpoch()
    {
        epoch_ = nextEpoch_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * One memo entry: the epoch it was written in plus type-erased
     * storage for the node's value. The slot's payload is allocated
     * on first touch and reused (overwritten in place) on every
     * later epoch, so steady-state sampling does not allocate.
     */
    struct MemoSlot
    {
        std::uint64_t epoch = 0;
        void* value = nullptr;
        void (*destroy)(void*) = nullptr;

        MemoSlot() = default;
        MemoSlot(MemoSlot&& other) noexcept
            : epoch(other.epoch), value(other.value),
              destroy(other.destroy)
        {
            other.value = nullptr;
            other.destroy = nullptr;
        }
        MemoSlot(const MemoSlot&) = delete;
        MemoSlot& operator=(const MemoSlot&) = delete;
        MemoSlot& operator=(MemoSlot&&) = delete;
        ~MemoSlot()
        {
            if (value)
                destroy(value);
        }
    };

    /** The memo slot for @p node, created empty on first use. */
    MemoSlot& slotFor(const GraphNode* node) { return memo_[node]; }

    /** Pre-size the memo table for a graph of @p nodes nodes. */
    void reserve(std::size_t nodes) { memo_.reserve(nodes); }

  private:
    /** Pointer hash with SplitMix64-style finalization: allocator
     *  addresses are too regular for the identity hash. */
    struct NodeHash
    {
        std::size_t
        operator()(const GraphNode* node) const
        {
            auto z = reinterpret_cast<std::uintptr_t>(node) >> 4;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return static_cast<std::size_t>(z ^ (z >> 31));
        }
    };

    static std::atomic<std::uint64_t> nextEpoch_;

    Rng* rng_;
    std::uint64_t epoch_ = 0;
    std::unordered_map<const GraphNode*, MemoSlot, NodeHash> memo_;
};

/**
 * Type-erased base for graph traversal (topology queries, DOT
 * export). The typed sampling interface lives in Node<T>.
 */
class GraphNode
{
  public:
    virtual ~GraphNode() = default;

    /** Operator or leaf label, e.g. "+", "leaf:Gaussian(0, 1)". */
    virtual std::string opName() const = 0;

    /** Child nodes (operands); empty for leaves. */
    virtual std::vector<std::shared_ptr<const GraphNode>>
    children() const
    {
        return {};
    }

    /** Number of nodes reachable from this one (including itself). */
    std::size_t graphSize() const;
};

/**
 * A random variable of type T in the network. sample() memoizes per
 * epoch in the SampleContext's memo table; subclasses implement
 * doSample(). Nodes are fully immutable after construction and are
 * shared via shared_ptr<const Node<T>>.
 *
 * Concurrency contract: because sampling writes only to the context,
 * one shared graph may be sampled from any number of threads
 * concurrently as long as each thread uses its own SampleContext and
 * Rng. A single context must not be shared across threads.
 */
template <typename T>
class Node : public GraphNode
{
  public:
    /** Draw this node's value for the current epoch of @p ctx. */
    T
    sample(SampleContext& ctx) const
    {
        // References into std::unordered_map are stable across the
        // inserts doSample()'s recursion may perform.
        auto& slot = ctx.slotFor(this);
        if (slot.epoch == ctx.epoch())
            return *static_cast<const T*>(slot.value);
        T value = doSample(ctx);
        if (slot.value == nullptr) {
            slot.value = new T(value);
            slot.destroy = [](void* p) { delete static_cast<T*>(p); };
        } else {
            *static_cast<T*>(slot.value) = value;
        }
        slot.epoch = ctx.epoch();
        return value;
    }

    /**
     * Lower this node (operands first) into @p builder's columnar
     * plan and return its column index. Idempotent per node: the
     * interning map turns the DAG into SSA, so shared subexpressions
     * get exactly one column.
     */
    std::size_t
    lowerInto(BatchBuilder& builder) const
    {
        const std::size_t found = builder.find(this);
        if (found != BatchBuilder::npos)
            return found;
        return doLower(builder);
    }

    /**
     * Lower this node (operands first) into @p builder's joint
     * support tables and return its entry index. Idempotent per node
     * like lowerInto, so shared subexpressions get exactly one entry
     * and stay perfectly correlated. Throws exact::Unsupported when
     * this node (or any descendant) has no exact semantics.
     */
    std::size_t
    lowerExact(exact::ExactBuilder& builder) const
    {
        const std::size_t found = builder.find(this);
        if (found != exact::ExactBuilder::npos)
            return found;
        return doLowerExact(builder);
    }

  protected:
    virtual T doSample(SampleContext& ctx) const = 0;

    /** Emit this node's column and kernel; operands via lowerInto. */
    virtual std::size_t doLower(BatchBuilder& builder) const = 0;

    /**
     * Emit this node's support table; operands via lowerExact. The
     * default refuses: only nodes with closed-form semantics
     * (finite-support leaves, point masses, lifted operators)
     * override it.
     */
    virtual std::size_t
    doLowerExact(exact::ExactBuilder& builder) const
    {
        (void)builder;
        exact::ExactBuilder::refuse("node '" + this->opName()
                                    + "' has no exact lowering");
    }
};

template <typename T>
using NodePtr = std::shared_ptr<const Node<T>>;

/**
 * Leaf: a known distribution, represented by a sampling function
 * (paper section 4.1). The callable receives the pass's Rng and
 * returns one draw.
 */
template <typename T>
class LeafNode final : public Node<T>
{
  public:
    /**
     * Optional bulk sampling function: fill @p n independent draws
     * from one generator in a single call. Purely a batch-engine fast
     * path — it must produce the same *law* as the scalar sampler,
     * not the same stream (random/distribution.hpp sampleMany).
     */
    using BulkSampler =
        std::function<void(Rng&, batch::Store<T>*, std::size_t)>;

    /**
     * @p support, when non-null, is the leaf's explicit finite
     * support table — the declaration that the sampler draws from
     * exactly that discrete law. It is what admits the leaf into the
     * exact enumeration backend; leaves without it refuse exact
     * lowering and the graph falls back to sampling.
     */
    LeafNode(std::function<T(Rng&)> sampler, std::string label,
             BulkSampler bulkSampler = nullptr,
             std::shared_ptr<const exact::FiniteSupport<T>> support =
                 nullptr)
        : sampler_(std::move(sampler)),
          bulkSampler_(std::move(bulkSampler)),
          support_(std::move(support)), label_(std::move(label))
    {
        UNCERTAIN_REQUIRE(sampler_ != nullptr,
                          "leaf requires a sampling function");
    }

    std::string opName() const override { return "leaf:" + label_; }

    /** The declared finite support, or null for opaque samplers. */
    const std::shared_ptr<const exact::FiniteSupport<T>>&
    finiteSupport() const
    {
        return support_;
    }

  protected:
    T doSample(SampleContext& ctx) const override
    {
        return sampler_(ctx.rng());
    }

    std::size_t
    doLower(BatchBuilder& builder) const override
    {
        const std::uint64_t stream = builder.nextLeafStream();
        const std::size_t col = builder.addColumn<T>(this);
        batch::StepInfo info;
        info.kind = batch::StepKind::Leaf;
        info.out = col;
        if (bulkSampler_) {
            info.run =
                [col, stream, bulk = bulkSampler_](BatchWorkspace& ws) {
                    Rng rng = ws.leafStream(stream);
                    bulk(rng, ws.template column<T>(col).data(), ws.length());
                };
        } else {
            info.run =
                [col, stream, sampler = sampler_](BatchWorkspace& ws) {
                    Rng rng = ws.leafStream(stream);
                    auto* out = ws.template column<T>(col).data();
                    const std::size_t n = ws.length();
                    for (std::size_t i = 0; i < n; ++i)
                        out[i] = static_cast<batch::Store<T>>(
                            sampler(rng));
                };
        }
        builder.addStep(std::move(info));
        return col;
    }

    std::size_t
    doLowerExact(exact::ExactBuilder& builder) const override
    {
        if (!support_) {
            exact::ExactBuilder::refuse(
                "leaf '" + label_ + "' has no finite support table");
        }
        return builder.addLeaf<T>(this, support_->values,
                                  support_->probabilities);
    }

  private:
    std::function<T(Rng&)> sampler_;
    BulkSampler bulkSampler_;
    std::shared_ptr<const exact::FiniteSupport<T>> support_;
    std::string label_;
};

/**
 * Point mass: the lifting of a plain T into the algebra (Table 1).
 * Sampling never consumes randomness.
 */
template <typename T>
class PointMassNode final : public Node<T>
{
  public:
    explicit PointMassNode(T value) : value_(std::move(value)) {}

    std::string opName() const override { return "pointmass"; }

    const T& value() const { return value_; }

  protected:
    T doSample(SampleContext&) const override { return value_; }

    std::size_t
    doLower(BatchBuilder& builder) const override
    {
        const std::size_t col = builder.addColumn<T>(this);
        builder.addStep(batch::makeConstStep<T>(col, value_));
        return col;
    }

    std::size_t
    doLowerExact(exact::ExactBuilder& builder) const override
    {
        return builder.addConst<T>(this, value_);
    }

  private:
    T value_;
};

/**
 * Inner node applying a binary base-type operator to two operand
 * variables. The conditional distribution Pr[this | a, b] is the
 * point mass at f(a, b), exactly the paper's semantics for inner
 * nodes.
 */
template <typename R, typename A, typename B, typename F>
class BinaryNode final : public Node<R>
{
  public:
    BinaryNode(NodePtr<A> lhs, NodePtr<B> rhs, F op, std::string label)
        : lhs_(std::move(lhs)), rhs_(std::move(rhs)), op_(std::move(op)),
          label_(std::move(label))
    {
        UNCERTAIN_ASSERT(lhs_ && rhs_, "binary node requires operands");
    }

    std::string opName() const override { return label_; }

    std::vector<std::shared_ptr<const GraphNode>>
    children() const override
    {
        return {lhs_, rhs_};
    }

  protected:
    R doSample(SampleContext& ctx) const override
    {
        // Operand order is fixed so the randomness stream is
        // deterministic for a given graph and seed.
        A a = lhs_->sample(ctx);
        B b = rhs_->sample(ctx);
        return op_(a, b);
    }

    std::size_t
    doLower(BatchBuilder& builder) const override
    {
        // Operands first (same fixed order as doSample), so leaf
        // stream indices are a pure function of the graph shape.
        const std::size_t lhs = lhs_->lowerInto(builder);
        const std::size_t rhs = rhs_->lowerInto(builder);
        const std::size_t col = builder.addColumn<R>(this);
        builder.addStep(batch::makeBinaryStep<R, A, B>(col, lhs, rhs, op_));
        return col;
    }

    std::size_t
    doLowerExact(exact::ExactBuilder& builder) const override
    {
        const std::size_t lhs = lhs_->lowerExact(builder);
        const std::size_t rhs = rhs_->lowerExact(builder);
        return builder.addBinary<R, A, B>(this, lhs, rhs, op_);
    }

  private:
    NodePtr<A> lhs_;
    NodePtr<B> rhs_;
    F op_;
    std::string label_;
};

/** Inner node applying a unary base-type operator. */
template <typename R, typename A, typename F>
class UnaryNode final : public Node<R>
{
  public:
    UnaryNode(NodePtr<A> operand, F op, std::string label)
        : operand_(std::move(operand)), op_(std::move(op)),
          label_(std::move(label))
    {
        UNCERTAIN_ASSERT(operand_ != nullptr,
                         "unary node requires an operand");
    }

    std::string opName() const override { return label_; }

    std::vector<std::shared_ptr<const GraphNode>>
    children() const override
    {
        return {operand_};
    }

  protected:
    R doSample(SampleContext& ctx) const override
    {
        return op_(operand_->sample(ctx));
    }

    std::size_t
    doLower(BatchBuilder& builder) const override
    {
        const std::size_t operand = operand_->lowerInto(builder);
        const std::size_t col = builder.addColumn<R>(this);
        builder.addStep(batch::makeUnaryStep<R, A>(col, operand, op_));
        return col;
    }

    std::size_t
    doLowerExact(exact::ExactBuilder& builder) const override
    {
        const std::size_t operand = operand_->lowerExact(builder);
        return builder.addUnary<R, A>(this, operand, op_);
    }

  private:
    NodePtr<A> operand_;
    F op_;
    std::string label_;
};

/**
 * Inner node applying a ternary base-type operator. Introduced for
 * lifted selection (uncertain::select) so per-sample branching is a
 * single node — one shared draw of the condition per pass — instead
 * of an opaque sampler.
 */
template <typename R, typename A, typename B, typename C, typename F>
class TernaryNode final : public Node<R>
{
  public:
    TernaryNode(NodePtr<A> first, NodePtr<B> second, NodePtr<C> third,
                F op, std::string label)
        : first_(std::move(first)), second_(std::move(second)),
          third_(std::move(third)), op_(std::move(op)),
          label_(std::move(label))
    {
        UNCERTAIN_ASSERT(first_ && second_ && third_,
                         "ternary node requires operands");
    }

    std::string opName() const override { return label_; }

    std::vector<std::shared_ptr<const GraphNode>>
    children() const override
    {
        return {first_, second_, third_};
    }

  protected:
    R doSample(SampleContext& ctx) const override
    {
        // Fixed operand order, as in BinaryNode: the randomness
        // stream is deterministic for a given graph and seed. All
        // three operands are sampled — select() is a lifted function
        // of three variables, not short-circuit control flow.
        A a = first_->sample(ctx);
        B b = second_->sample(ctx);
        C c = third_->sample(ctx);
        return op_(a, b, c);
    }

    std::size_t
    doLower(BatchBuilder& builder) const override
    {
        const std::size_t first = first_->lowerInto(builder);
        const std::size_t second = second_->lowerInto(builder);
        const std::size_t third = third_->lowerInto(builder);
        const std::size_t col = builder.addColumn<R>(this);
        builder.addStep(batch::makeTernaryStep<R, A, B, C>(
            col, first, second, third, op_));
        return col;
    }

    std::size_t
    doLowerExact(exact::ExactBuilder& builder) const override
    {
        const std::size_t first = first_->lowerExact(builder);
        const std::size_t second = second_->lowerExact(builder);
        const std::size_t third = third_->lowerExact(builder);
        return builder.addTernary<R, A, B, C>(this, first, second,
                                              third, op_);
    }

  private:
    NodePtr<A> first_;
    NodePtr<B> second_;
    NodePtr<C> third_;
    F op_;
    std::string label_;
};

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_NODE_HPP
