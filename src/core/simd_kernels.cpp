/**
 * @file
 * SIMD kernel implementations and runtime CPU-feature dispatch.
 *
 * Layout: one portable scalar-emulation function per kernel (the
 * reference semantics, and the body every other path must match
 * bit-for-bit), plus AVX2 / SSE2 specializations guarded by
 * function-level target attributes so the translation unit itself
 * stays baseline-encodable — the AVX2 bodies are only ever entered
 * after __builtin_cpu_supports("avx2") says the instructions exist.
 * A NEON double-pack path covers aarch64 for the f64 strips.
 *
 * This TU is compiled with -ffp-contract=off (see src/core/
 * CMakeLists.txt): neither the emulation loops nor the tails may
 * fuse mul+add into FMA, because the explicit vector code uses
 * separate mul and add instructions and the two must round
 *
 * identically. The xoshiro256** step is reimplemented here (7 lines)
 * rather than calling support/rng.cpp, because this target sits
 * BELOW uncertain_support in the link order; the algorithm is pinned
 * by tests/core/simd_backend_test.cpp against Rng's own outputs.
 */

#include "core/simd_kernels.hpp"

#include <atomic>
#include <cstring>

#if !defined(UNCERTAIN_SIMD_DISABLED) && defined(__GNUC__) \
    && (defined(__x86_64__) || defined(__i386__) || defined(_M_X64))
#define UNCERTAIN_SIMD_X86 1
#include <immintrin.h>
#define UNCERTAIN_TARGET_AVX2 __attribute__((target("avx2")))
#endif

#if !defined(UNCERTAIN_SIMD_DISABLED) && defined(__ARM_NEON) \
    && defined(__aarch64__)
#define UNCERTAIN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace uncertain {
namespace simd {

namespace {

std::atomic<bool> gForceScalar{false};

Isa
detectIsaOnce()
{
#if defined(UNCERTAIN_SIMD_X86)
    if (__builtin_cpu_supports("avx2"))
        return Isa::Avx2;
    return Isa::Sse2; // SSE2 is the x86-64 baseline
#elif defined(UNCERTAIN_SIMD_NEON)
    return Isa::Neon;
#else
    return Isa::Scalar;
#endif
}

/** min(requested, compiled, detected): the Isa a call executes at. */
Isa
clampIsa(Isa isa)
{
    const auto cap = static_cast<std::uint8_t>(compiledIsa());
    const auto det = static_cast<std::uint8_t>(detectedIsa());
    auto v = static_cast<std::uint8_t>(isa);
    if (v > cap)
        v = cap;
    if (v > det)
        v = det;
    return static_cast<Isa>(v);
}

inline std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** One xoshiro256** transition (Blackman & Vigna; mirrors
 *  Xoshiro256StarStar::next in support/rng.cpp). */
inline void
xoStep(std::uint64_t s[4])
{
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl64(s[3], 45);
}

/** The ** scrambler: the output for the current state. */
inline std::uint64_t
xoOutput(const std::uint64_t s[4])
{
    return rotl64(s[1] * 5, 7) * 9;
}

inline double
wordToDouble(std::uint64_t x, bool open)
{
    // Mirrors Rng::nextDouble / nextDoubleOpen exactly.
    return open ? (static_cast<double>(x >> 11) + 0.5) * 0x1.0p-53
                : static_cast<double>(x >> 11) * 0x1.0p-53;
}

// =====================================================================
// Scalar emulation: the reference semantics for every kernel.
// =====================================================================

void
binaryF64Scalar(BinF64 op, const double* a, const double* b,
                double* out, std::size_t n)
{
    switch (op) {
    case BinF64::Add:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] + b[i];
        break;
    case BinF64::Sub:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] - b[i];
        break;
    case BinF64::Mul:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] * b[i];
        break;
    case BinF64::Div:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] / b[i];
        break;
    case BinF64::Min: // ops::Min: (y < x) ? y : x
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (b[i] < a[i]) ? b[i] : a[i];
        break;
    case BinF64::Max: // ops::Max: (x < y) ? y : x
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (a[i] < b[i]) ? b[i] : a[i];
        break;
    }
}

void
binaryF64ConstBScalar(BinF64 op, const double* a, double b,
                      double* out, std::size_t n)
{
    switch (op) {
    case BinF64::Add:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] + b;
        break;
    case BinF64::Sub:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] - b;
        break;
    case BinF64::Mul:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] * b;
        break;
    case BinF64::Div:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] / b;
        break;
    case BinF64::Min:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (b < a[i]) ? b : a[i];
        break;
    case BinF64::Max:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (a[i] < b) ? b : a[i];
        break;
    }
}

void
binaryF64ConstAScalar(BinF64 op, double a, const double* b,
                      double* out, std::size_t n)
{
    switch (op) {
    case BinF64::Add:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a + b[i];
        break;
    case BinF64::Sub:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a - b[i];
        break;
    case BinF64::Mul:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a * b[i];
        break;
    case BinF64::Div:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a / b[i];
        break;
    case BinF64::Min:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (b[i] < a) ? b[i] : a;
        break;
    case BinF64::Max:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (a < b[i]) ? b[i] : a;
        break;
    }
}

void
compareF64Scalar(Cmp op, const double* a, const double* b,
                 std::uint8_t* out, std::size_t n)
{
    switch (op) {
    case Cmp::Lt:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] < b[i] ? 1 : 0;
        break;
    case Cmp::Gt:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] > b[i] ? 1 : 0;
        break;
    case Cmp::Le:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] <= b[i] ? 1 : 0;
        break;
    case Cmp::Ge:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] >= b[i] ? 1 : 0;
        break;
    case Cmp::Eq:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] == b[i] ? 1 : 0;
        break;
    case Cmp::Ne:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] != b[i] ? 1 : 0;
        break;
    }
}

void
binaryI32Scalar(BinI32 op, const std::int32_t* a, const std::int32_t* b,
                std::int32_t* out, std::size_t n)
{
    switch (op) {
    case BinI32::Add:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] + b[i];
        break;
    case BinI32::Sub:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] - b[i];
        break;
    case BinI32::Mul:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] * b[i];
        break;
    case BinI32::Min:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (b[i] < a[i]) ? b[i] : a[i];
        break;
    case BinI32::Max:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (a[i] < b[i]) ? b[i] : a[i];
        break;
    }
}

void
compareI32Scalar(Cmp op, const std::int32_t* a, const std::int32_t* b,
                 std::uint8_t* out, std::size_t n)
{
    switch (op) {
    case Cmp::Lt:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] < b[i] ? 1 : 0;
        break;
    case Cmp::Gt:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] > b[i] ? 1 : 0;
        break;
    case Cmp::Le:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] <= b[i] ? 1 : 0;
        break;
    case Cmp::Ge:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] >= b[i] ? 1 : 0;
        break;
    case Cmp::Eq:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] == b[i] ? 1 : 0;
        break;
    case Cmp::Ne:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] != b[i] ? 1 : 0;
        break;
    }
}

void
binaryI64Scalar(BinI64 op, const std::int64_t* a, const std::int64_t* b,
                std::int64_t* out, std::size_t n)
{
    switch (op) {
    case BinI64::Add:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] + b[i];
        break;
    case BinI64::Sub:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] - b[i];
        break;
    }
}

void
boolBinaryScalar(BoolOp op, const std::uint8_t* a, const std::uint8_t* b,
                 std::uint8_t* out, std::size_t n)
{
    // Columns hold 0/1 bytes, so & and | coincide with && and ||.
    if (op == BoolOp::And) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] & b[i];
    } else {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] | b[i];
    }
}

void
boolNotScalar(const std::uint8_t* a, std::uint8_t* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] == 0 ? 1 : 0;
}

void
negF64Scalar(const double* a, double* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = -a[i];
}

void
selectF64Scalar(const std::uint8_t* c, const double* x, const double* y,
                double* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = c[i] ? x[i] : y[i];
}

void
xoshiroFillU64Scalar(std::uint64_t state[4], std::uint64_t* out,
                     std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = xoOutput(state);
        xoStep(state);
    }
}

void
xoshiroFillDoubleScalar(std::uint64_t state[4], double* out,
                        std::size_t n, bool open)
{
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = wordToDouble(xoOutput(state), open);
        xoStep(state);
    }
}

/** Scalar ziggurat accept over words [i0, n), appending rejects. */
std::size_t
zigguratAcceptScalar(const std::uint64_t* words, std::size_t i0,
                     std::size_t n, const std::uint32_t* kn,
                     const double* wn, double mu, double sigma,
                     double* out, std::uint32_t* rejects,
                     std::size_t nRejects)
{
    for (std::size_t i = i0; i < n; ++i) {
        const auto hz = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(words[i]));
        const std::uint32_t iz = static_cast<std::uint32_t>(hz) & 127u;
        // Magnitude via unsigned negation: |INT32_MIN| overflows int.
        const std::uint32_t mag =
            hz < 0 ? ~static_cast<std::uint32_t>(hz) + 1u
                   : static_cast<std::uint32_t>(hz);
        if (mag < kn[iz])
            out[i] = mu + sigma * (static_cast<double>(hz) * wn[iz]);
        else
            rejects[nRejects++] = static_cast<std::uint32_t>(i);
    }
    return nRejects;
}

// =====================================================================
// SSE2: 2-lane double packs (x86-64 baseline; no target attribute).
// =====================================================================

#if defined(UNCERTAIN_SIMD_X86) && defined(__SSE2__)

// Op dispatch happens ONCE per strip, never per iteration: each op
// gets its own tight loop via a template parameter. A `switch (op)`
// inside the vector loop measured ~3.5x slower on the mul strip —
// GCC cannot loop-unswitch across intrinsics, so the per-iteration
// dispatch survives into the hot loop. (The scalar emulation kernels
// above hoist the switch by hand for the same reason.)

template <BinF64 Op>
void
binaryF64Sse2Loop(const double* a, const double* b, double* out,
                  std::size_t n2)
{
    for (std::size_t i = 0; i < n2; i += 2) {
        const __m128d va = _mm_loadu_pd(a + i);
        const __m128d vb = _mm_loadu_pd(b + i);
        __m128d r;
        if constexpr (Op == BinF64::Add)
            r = _mm_add_pd(va, vb);
        else if constexpr (Op == BinF64::Sub)
            r = _mm_sub_pd(va, vb);
        else if constexpr (Op == BinF64::Mul)
            r = _mm_mul_pd(va, vb);
        else if constexpr (Op == BinF64::Div)
            r = _mm_div_pd(va, vb);
        else if constexpr (Op == BinF64::Min) {
            // (b < a) ? b : a — compare+blend, NOT minpd (whose NaN
            // and -0.0 conventions differ from the scalar ternary).
            const __m128d m = _mm_cmplt_pd(vb, va);
            r = _mm_or_pd(_mm_and_pd(m, vb), _mm_andnot_pd(m, va));
        } else {
            static_assert(Op == BinF64::Max);
            const __m128d m = _mm_cmplt_pd(va, vb);
            r = _mm_or_pd(_mm_and_pd(m, vb), _mm_andnot_pd(m, va));
        }
        _mm_storeu_pd(out + i, r);
    }
}

void
binaryF64Sse2(BinF64 op, const double* a, const double* b, double* out,
              std::size_t n)
{
    const std::size_t n2 = n & ~std::size_t{1};
    switch (op) {
    case BinF64::Add: binaryF64Sse2Loop<BinF64::Add>(a, b, out, n2); break;
    case BinF64::Sub: binaryF64Sse2Loop<BinF64::Sub>(a, b, out, n2); break;
    case BinF64::Mul: binaryF64Sse2Loop<BinF64::Mul>(a, b, out, n2); break;
    case BinF64::Div: binaryF64Sse2Loop<BinF64::Div>(a, b, out, n2); break;
    case BinF64::Min: binaryF64Sse2Loop<BinF64::Min>(a, b, out, n2); break;
    case BinF64::Max: binaryF64Sse2Loop<BinF64::Max>(a, b, out, n2); break;
    }
    if (n2 < n)
        binaryF64Scalar(op, a + n2, b + n2, out + n2, n - n2);
}

template <Cmp Op>
void
compareF64Sse2Loop(const double* a, const double* b, std::uint8_t* out,
                   std::size_t n2)
{
    for (std::size_t i = 0; i < n2; i += 2) {
        const __m128d va = _mm_loadu_pd(a + i);
        const __m128d vb = _mm_loadu_pd(b + i);
        __m128d m;
        if constexpr (Op == Cmp::Lt)
            m = _mm_cmplt_pd(va, vb);
        else if constexpr (Op == Cmp::Gt)
            m = _mm_cmpgt_pd(va, vb);
        else if constexpr (Op == Cmp::Le)
            m = _mm_cmple_pd(va, vb);
        else if constexpr (Op == Cmp::Ge)
            m = _mm_cmpge_pd(va, vb);
        else if constexpr (Op == Cmp::Eq)
            m = _mm_cmpeq_pd(va, vb);
        else {
            static_assert(Op == Cmp::Ne);
            m = _mm_cmpneq_pd(va, vb);
        }
        const int bits = _mm_movemask_pd(m);
        out[i] = static_cast<std::uint8_t>(bits & 1);
        out[i + 1] = static_cast<std::uint8_t>((bits >> 1) & 1);
    }
}

void
compareF64Sse2(Cmp op, const double* a, const double* b,
               std::uint8_t* out, std::size_t n)
{
    const std::size_t n2 = n & ~std::size_t{1};
    switch (op) {
    case Cmp::Lt: compareF64Sse2Loop<Cmp::Lt>(a, b, out, n2); break;
    case Cmp::Gt: compareF64Sse2Loop<Cmp::Gt>(a, b, out, n2); break;
    case Cmp::Le: compareF64Sse2Loop<Cmp::Le>(a, b, out, n2); break;
    case Cmp::Ge: compareF64Sse2Loop<Cmp::Ge>(a, b, out, n2); break;
    case Cmp::Eq: compareF64Sse2Loop<Cmp::Eq>(a, b, out, n2); break;
    case Cmp::Ne: compareF64Sse2Loop<Cmp::Ne>(a, b, out, n2); break;
    }
    if (n2 < n)
        compareF64Scalar(op, a + n2, b + n2, out + n2, n - n2);
}

// Broadcast-constant binary loops: the constant operand lives in a
// register (one splat before the loop), halving the load streams.
// ConstOnB selects which side of the op the constant sits on; the
// per-lane arithmetic is the same as the column-column loop.

template <BinF64 Op, bool ConstOnB>
void
binaryF64ConstSse2Loop(const double* col, double c, double* out,
                       std::size_t n2)
{
    const __m128d vc = _mm_set1_pd(c);
    for (std::size_t i = 0; i < n2; i += 2) {
        const __m128d vcol = _mm_loadu_pd(col + i);
        const __m128d va = ConstOnB ? vcol : vc;
        const __m128d vb = ConstOnB ? vc : vcol;
        __m128d r;
        if constexpr (Op == BinF64::Add)
            r = _mm_add_pd(va, vb);
        else if constexpr (Op == BinF64::Sub)
            r = _mm_sub_pd(va, vb);
        else if constexpr (Op == BinF64::Mul)
            r = _mm_mul_pd(va, vb);
        else if constexpr (Op == BinF64::Div)
            r = _mm_div_pd(va, vb);
        else if constexpr (Op == BinF64::Min) {
            const __m128d m = _mm_cmplt_pd(vb, va);
            r = _mm_or_pd(_mm_and_pd(m, vb), _mm_andnot_pd(m, va));
        } else {
            static_assert(Op == BinF64::Max);
            const __m128d m = _mm_cmplt_pd(va, vb);
            r = _mm_or_pd(_mm_and_pd(m, vb), _mm_andnot_pd(m, va));
        }
        _mm_storeu_pd(out + i, r);
    }
}

template <bool ConstOnB>
void
binaryF64ConstSse2(BinF64 op, const double* col, double c, double* out,
                   std::size_t n)
{
    const std::size_t n2 = n & ~std::size_t{1};
    switch (op) {
    case BinF64::Add:
        binaryF64ConstSse2Loop<BinF64::Add, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Sub:
        binaryF64ConstSse2Loop<BinF64::Sub, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Mul:
        binaryF64ConstSse2Loop<BinF64::Mul, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Div:
        binaryF64ConstSse2Loop<BinF64::Div, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Min:
        binaryF64ConstSse2Loop<BinF64::Min, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Max:
        binaryF64ConstSse2Loop<BinF64::Max, ConstOnB>(col, c, out, n2);
        break;
    }
    if (n2 < n) {
        if constexpr (ConstOnB)
            binaryF64ConstBScalar(op, col + n2, c, out + n2, n - n2);
        else
            binaryF64ConstAScalar(op, c, col + n2, out + n2, n - n2);
    }
}

void
negF64Sse2(const double* a, double* out, std::size_t n)
{
    const __m128d sign = _mm_set1_pd(-0.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        _mm_storeu_pd(out + i, _mm_xor_pd(_mm_loadu_pd(a + i), sign));
    if (i < n)
        negF64Scalar(a + i, out + i, n - i);
}

void
boolBinarySse2(BoolOp op, const std::uint8_t* a, const std::uint8_t* b,
               std::uint8_t* out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
        const __m128i r = op == BoolOp::And ? _mm_and_si128(va, vb)
                                            : _mm_or_si128(va, vb);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), r);
    }
    if (i < n)
        boolBinaryScalar(op, a + i, b + i, out + i, n - i);
}

void
boolNotSse2(const std::uint8_t* a, std::uint8_t* out, std::size_t n)
{
    const __m128i zero = _mm_setzero_si128();
    const __m128i one = _mm_set1_epi8(1);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i r = _mm_and_si128(_mm_cmpeq_epi8(va, zero), one);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), r);
    }
    if (i < n)
        boolNotScalar(a + i, out + i, n - i);
}

#endif // UNCERTAIN_SIMD_X86 && __SSE2__

// =====================================================================
// AVX2: 4-lane double / u64 packs, gathers. Entered only after
// runtime detection; the target attribute keeps the rest of the TU
// baseline-encodable.
// =====================================================================

#if defined(UNCERTAIN_SIMD_X86)

// As with the SSE2 layer: op dispatch is hoisted out of the vector
// loops via template parameters (GCC cannot loop-unswitch through
// intrinsics, and a per-iteration switch measured ~3.5x slower).

/** One 4-lane pack of a BinF64 op (shared by the column and
 *  broadcast-constant loops below). */
template <BinF64 Op>
UNCERTAIN_TARGET_AVX2 inline __m256d
binF64PackAvx2(__m256d va, __m256d vb)
{
    if constexpr (Op == BinF64::Add)
        return _mm256_add_pd(va, vb);
    else if constexpr (Op == BinF64::Sub)
        return _mm256_sub_pd(va, vb);
    else if constexpr (Op == BinF64::Mul)
        return _mm256_mul_pd(va, vb);
    else if constexpr (Op == BinF64::Div)
        return _mm256_div_pd(va, vb);
    else if constexpr (Op == BinF64::Min)
        // (b < a) ? b : a — compare+blend, NOT minpd (whose NaN
        // and -0.0 conventions differ from the scalar ternary).
        return _mm256_blendv_pd(va, vb,
                                _mm256_cmp_pd(vb, va, _CMP_LT_OQ));
    else {
        static_assert(Op == BinF64::Max);
        return _mm256_blendv_pd(va, vb,
                                _mm256_cmp_pd(va, vb, _CMP_LT_OQ));
    }
}

// The f64 loops are unrolled 4x (16 elements per iteration): at one
// pack per iteration the loop bookkeeping is as many uops as the
// work, and on a 4-wide core that caps throughput at ~1 cycle per
// pack; unrolling measured ~1.3-1.7x on the 256-element strips the
// fused kernels issue.
template <BinF64 Op>
UNCERTAIN_TARGET_AVX2 void
binaryF64Avx2Loop(const double* a, const double* b, double* out,
                  std::size_t n4)
{
    std::size_t i = 0;
    for (; i + 16 <= n4; i += 16) {
        _mm256_storeu_pd(out + i,
                         binF64PackAvx2<Op>(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
        _mm256_storeu_pd(
            out + i + 4, binF64PackAvx2<Op>(_mm256_loadu_pd(a + i + 4),
                                            _mm256_loadu_pd(b + i + 4)));
        _mm256_storeu_pd(
            out + i + 8, binF64PackAvx2<Op>(_mm256_loadu_pd(a + i + 8),
                                            _mm256_loadu_pd(b + i + 8)));
        _mm256_storeu_pd(out + i + 12,
                         binF64PackAvx2<Op>(
                             _mm256_loadu_pd(a + i + 12),
                             _mm256_loadu_pd(b + i + 12)));
    }
    for (; i < n4; i += 4)
        _mm256_storeu_pd(out + i,
                         binF64PackAvx2<Op>(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
}

UNCERTAIN_TARGET_AVX2 void
binaryF64Avx2(BinF64 op, const double* a, const double* b, double* out,
              std::size_t n)
{
    const std::size_t n4 = n & ~std::size_t{3};
    switch (op) {
    case BinF64::Add: binaryF64Avx2Loop<BinF64::Add>(a, b, out, n4); break;
    case BinF64::Sub: binaryF64Avx2Loop<BinF64::Sub>(a, b, out, n4); break;
    case BinF64::Mul: binaryF64Avx2Loop<BinF64::Mul>(a, b, out, n4); break;
    case BinF64::Div: binaryF64Avx2Loop<BinF64::Div>(a, b, out, n4); break;
    case BinF64::Min: binaryF64Avx2Loop<BinF64::Min>(a, b, out, n4); break;
    case BinF64::Max: binaryF64Avx2Loop<BinF64::Max>(a, b, out, n4); break;
    }
    if (n4 < n)
        binaryF64Scalar(op, a + n4, b + n4, out + n4, n - n4);
}

/** Pack helper with the constant on the side ConstOnB selects. */
template <BinF64 Op, bool ConstOnB>
UNCERTAIN_TARGET_AVX2 inline __m256d
binF64ConstPackAvx2(__m256d vcol, __m256d vc)
{
    if constexpr (ConstOnB)
        return binF64PackAvx2<Op>(vcol, vc);
    else
        return binF64PackAvx2<Op>(vc, vcol);
}

template <BinF64 Op, bool ConstOnB>
UNCERTAIN_TARGET_AVX2 void
binaryF64ConstAvx2Loop(const double* col, double c, double* out,
                       std::size_t n4)
{
    const __m256d vc = _mm256_set1_pd(c);
    std::size_t i = 0;
    for (; i + 16 <= n4; i += 16) {
        _mm256_storeu_pd(out + i,
                         binF64ConstPackAvx2<Op, ConstOnB>(
                             _mm256_loadu_pd(col + i), vc));
        _mm256_storeu_pd(out + i + 4,
                         binF64ConstPackAvx2<Op, ConstOnB>(
                             _mm256_loadu_pd(col + i + 4), vc));
        _mm256_storeu_pd(out + i + 8,
                         binF64ConstPackAvx2<Op, ConstOnB>(
                             _mm256_loadu_pd(col + i + 8), vc));
        _mm256_storeu_pd(out + i + 12,
                         binF64ConstPackAvx2<Op, ConstOnB>(
                             _mm256_loadu_pd(col + i + 12), vc));
    }
    for (; i < n4; i += 4)
        _mm256_storeu_pd(out + i,
                         binF64ConstPackAvx2<Op, ConstOnB>(
                             _mm256_loadu_pd(col + i), vc));
}

template <bool ConstOnB>
UNCERTAIN_TARGET_AVX2 void
binaryF64ConstAvx2(BinF64 op, const double* col, double c, double* out,
                   std::size_t n)
{
    const std::size_t n4 = n & ~std::size_t{3};
    switch (op) {
    case BinF64::Add:
        binaryF64ConstAvx2Loop<BinF64::Add, ConstOnB>(col, c, out, n4);
        break;
    case BinF64::Sub:
        binaryF64ConstAvx2Loop<BinF64::Sub, ConstOnB>(col, c, out, n4);
        break;
    case BinF64::Mul:
        binaryF64ConstAvx2Loop<BinF64::Mul, ConstOnB>(col, c, out, n4);
        break;
    case BinF64::Div:
        binaryF64ConstAvx2Loop<BinF64::Div, ConstOnB>(col, c, out, n4);
        break;
    case BinF64::Min:
        binaryF64ConstAvx2Loop<BinF64::Min, ConstOnB>(col, c, out, n4);
        break;
    case BinF64::Max:
        binaryF64ConstAvx2Loop<BinF64::Max, ConstOnB>(col, c, out, n4);
        break;
    }
    if (n4 < n) {
        if constexpr (ConstOnB)
            binaryF64ConstBScalar(op, col + n4, c, out + n4, n - n4);
        else
            binaryF64ConstAScalar(op, c, col + n4, out + n4, n - n4);
    }
}

template <Cmp Op>
UNCERTAIN_TARGET_AVX2 void
compareF64Avx2Loop(const double* a, const double* b, std::uint8_t* out,
                   std::size_t n4)
{
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256d va = _mm256_loadu_pd(a + i);
        const __m256d vb = _mm256_loadu_pd(b + i);
        __m256d m;
        if constexpr (Op == Cmp::Lt)
            m = _mm256_cmp_pd(va, vb, _CMP_LT_OQ);
        else if constexpr (Op == Cmp::Gt)
            m = _mm256_cmp_pd(va, vb, _CMP_GT_OQ);
        else if constexpr (Op == Cmp::Le)
            m = _mm256_cmp_pd(va, vb, _CMP_LE_OQ);
        else if constexpr (Op == Cmp::Ge)
            m = _mm256_cmp_pd(va, vb, _CMP_GE_OQ);
        else if constexpr (Op == Cmp::Eq)
            m = _mm256_cmp_pd(va, vb, _CMP_EQ_OQ);
        else {
            static_assert(Op == Cmp::Ne);
            m = _mm256_cmp_pd(va, vb, _CMP_NEQ_UQ);
        }
        const int bits = _mm256_movemask_pd(m);
        out[i] = static_cast<std::uint8_t>(bits & 1);
        out[i + 1] = static_cast<std::uint8_t>((bits >> 1) & 1);
        out[i + 2] = static_cast<std::uint8_t>((bits >> 2) & 1);
        out[i + 3] = static_cast<std::uint8_t>((bits >> 3) & 1);
    }
}

UNCERTAIN_TARGET_AVX2 void
compareF64Avx2(Cmp op, const double* a, const double* b,
               std::uint8_t* out, std::size_t n)
{
    const std::size_t n4 = n & ~std::size_t{3};
    switch (op) {
    case Cmp::Lt: compareF64Avx2Loop<Cmp::Lt>(a, b, out, n4); break;
    case Cmp::Gt: compareF64Avx2Loop<Cmp::Gt>(a, b, out, n4); break;
    case Cmp::Le: compareF64Avx2Loop<Cmp::Le>(a, b, out, n4); break;
    case Cmp::Ge: compareF64Avx2Loop<Cmp::Ge>(a, b, out, n4); break;
    case Cmp::Eq: compareF64Avx2Loop<Cmp::Eq>(a, b, out, n4); break;
    case Cmp::Ne: compareF64Avx2Loop<Cmp::Ne>(a, b, out, n4); break;
    }
    if (n4 < n)
        compareF64Scalar(op, a + n4, b + n4, out + n4, n - n4);
}

template <BinI32 Op>
UNCERTAIN_TARGET_AVX2 void
binaryI32Avx2Loop(const std::int32_t* a, const std::int32_t* b,
                  std::int32_t* out, std::size_t n8)
{
    for (std::size_t i = 0; i < n8; i += 8) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        __m256i r;
        if constexpr (Op == BinI32::Add)
            r = _mm256_add_epi32(va, vb);
        else if constexpr (Op == BinI32::Sub)
            r = _mm256_sub_epi32(va, vb);
        else if constexpr (Op == BinI32::Mul)
            r = _mm256_mullo_epi32(va, vb);
        else if constexpr (Op == BinI32::Min)
            r = _mm256_min_epi32(va, vb);
        else {
            static_assert(Op == BinI32::Max);
            r = _mm256_max_epi32(va, vb);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
    }
}

UNCERTAIN_TARGET_AVX2 void
binaryI32Avx2(BinI32 op, const std::int32_t* a, const std::int32_t* b,
              std::int32_t* out, std::size_t n)
{
    const std::size_t n8 = n & ~std::size_t{7};
    switch (op) {
    case BinI32::Add: binaryI32Avx2Loop<BinI32::Add>(a, b, out, n8); break;
    case BinI32::Sub: binaryI32Avx2Loop<BinI32::Sub>(a, b, out, n8); break;
    case BinI32::Mul: binaryI32Avx2Loop<BinI32::Mul>(a, b, out, n8); break;
    case BinI32::Min: binaryI32Avx2Loop<BinI32::Min>(a, b, out, n8); break;
    case BinI32::Max: binaryI32Avx2Loop<BinI32::Max>(a, b, out, n8); break;
    }
    if (n8 < n)
        binaryI32Scalar(op, a + n8, b + n8, out + n8, n - n8);
}

template <Cmp Op>
UNCERTAIN_TARGET_AVX2 void
compareI32Avx2Loop(const std::int32_t* a, const std::int32_t* b,
                   std::uint8_t* out, std::size_t n8)
{
    for (std::size_t i = 0; i < n8; i += 8) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        int bits;
        if constexpr (Op == Cmp::Lt)
            bits = _mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpgt_epi32(vb, va)));
        else if constexpr (Op == Cmp::Gt)
            bits = _mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpgt_epi32(va, vb)));
        else if constexpr (Op == Cmp::Le)
            bits = _mm256_movemask_ps(_mm256_castsi256_ps(
                       _mm256_cmpgt_epi32(va, vb)))
                   ^ 0xFF;
        else if constexpr (Op == Cmp::Ge)
            bits = _mm256_movemask_ps(_mm256_castsi256_ps(
                       _mm256_cmpgt_epi32(vb, va)))
                   ^ 0xFF;
        else if constexpr (Op == Cmp::Eq)
            bits = _mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb)));
        else {
            static_assert(Op == Cmp::Ne);
            bits = _mm256_movemask_ps(_mm256_castsi256_ps(
                       _mm256_cmpeq_epi32(va, vb)))
                   ^ 0xFF;
        }
        for (int j = 0; j < 8; ++j)
            out[i + static_cast<std::size_t>(j)] =
                static_cast<std::uint8_t>((bits >> j) & 1);
    }
}

UNCERTAIN_TARGET_AVX2 void
compareI32Avx2(Cmp op, const std::int32_t* a, const std::int32_t* b,
               std::uint8_t* out, std::size_t n)
{
    const std::size_t n8 = n & ~std::size_t{7};
    switch (op) {
    case Cmp::Lt: compareI32Avx2Loop<Cmp::Lt>(a, b, out, n8); break;
    case Cmp::Gt: compareI32Avx2Loop<Cmp::Gt>(a, b, out, n8); break;
    case Cmp::Le: compareI32Avx2Loop<Cmp::Le>(a, b, out, n8); break;
    case Cmp::Ge: compareI32Avx2Loop<Cmp::Ge>(a, b, out, n8); break;
    case Cmp::Eq: compareI32Avx2Loop<Cmp::Eq>(a, b, out, n8); break;
    case Cmp::Ne: compareI32Avx2Loop<Cmp::Ne>(a, b, out, n8); break;
    }
    if (n8 < n)
        compareI32Scalar(op, a + n8, b + n8, out + n8, n - n8);
}

template <BinI64 Op>
UNCERTAIN_TARGET_AVX2 void
binaryI64Avx2Loop(const std::int64_t* a, const std::int64_t* b,
                  std::int64_t* out, std::size_t n4)
{
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i r = Op == BinI64::Add ? _mm256_add_epi64(va, vb)
                                            : _mm256_sub_epi64(va, vb);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
    }
}

UNCERTAIN_TARGET_AVX2 void
binaryI64Avx2(BinI64 op, const std::int64_t* a, const std::int64_t* b,
              std::int64_t* out, std::size_t n)
{
    const std::size_t n4 = n & ~std::size_t{3};
    if (op == BinI64::Add)
        binaryI64Avx2Loop<BinI64::Add>(a, b, out, n4);
    else
        binaryI64Avx2Loop<BinI64::Sub>(a, b, out, n4);
    if (n4 < n)
        binaryI64Scalar(op, a + n4, b + n4, out + n4, n - n4);
}

template <BoolOp Op>
UNCERTAIN_TARGET_AVX2 void
boolBinaryAvx2Loop(const std::uint8_t* a, const std::uint8_t* b,
                   std::uint8_t* out, std::size_t n32)
{
    for (std::size_t i = 0; i < n32; i += 32) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i r = Op == BoolOp::And ? _mm256_and_si256(va, vb)
                                            : _mm256_or_si256(va, vb);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
    }
}

UNCERTAIN_TARGET_AVX2 void
boolBinaryAvx2(BoolOp op, const std::uint8_t* a, const std::uint8_t* b,
               std::uint8_t* out, std::size_t n)
{
    const std::size_t n32 = n & ~std::size_t{31};
    if (op == BoolOp::And)
        boolBinaryAvx2Loop<BoolOp::And>(a, b, out, n32);
    else
        boolBinaryAvx2Loop<BoolOp::Or>(a, b, out, n32);
    if (n32 < n)
        boolBinaryScalar(op, a + n32, b + n32, out + n32, n - n32);
}

UNCERTAIN_TARGET_AVX2 void
boolNotAvx2(const std::uint8_t* a, std::uint8_t* out, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi8(1);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i r =
            _mm256_and_si256(_mm256_cmpeq_epi8(va, zero), one);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
    }
    if (i < n)
        boolNotScalar(a + i, out + i, n - i);
}

UNCERTAIN_TARGET_AVX2 void
negF64Avx2(const double* a, double* out, std::size_t n)
{
    const __m256d sign = _mm256_set1_pd(-0.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i,
                         _mm256_xor_pd(_mm256_loadu_pd(a + i), sign));
    if (i < n)
        negF64Scalar(a + i, out + i, n - i);
}

UNCERTAIN_TARGET_AVX2 void
selectF64Avx2(const std::uint8_t* c, const double* x, const double* y,
              double* out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        std::int32_t cword;
        std::memcpy(&cword, c + i, 4);
        const __m256i cq =
            _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(cword));
        const __m256d mask = _mm256_castsi256_pd(
            _mm256_cmpgt_epi64(cq, _mm256_setzero_si256()));
        const __m256d r = _mm256_blendv_pd(_mm256_loadu_pd(y + i),
                                           _mm256_loadu_pd(x + i), mask);
        _mm256_storeu_pd(out + i, r);
    }
    if (i < n)
        selectF64Scalar(c + i, x + i, y + i, out + i, n - i);
}

// ---- xoshiro256** leapfrog fills -------------------------------------

UNCERTAIN_TARGET_AVX2 inline __m256i
xoRotl(__m256i x, int k)
{
    return _mm256_or_si256(_mm256_slli_epi64(x, k),
                           _mm256_srli_epi64(x, 64 - k));
}

/** rotl(s1 * 5, 7) * 9 over 4 lanes (shift-add, no 64-bit multiply). */
UNCERTAIN_TARGET_AVX2 inline __m256i
xoScramble(__m256i s1)
{
    const __m256i x5 =
        _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
    const __m256i rot = xoRotl(x5, 7);
    return _mm256_add_epi64(rot, _mm256_slli_epi64(rot, 3));
}

/**
 * Leapfrog engine state: lane j of (s0..s3) holds the serial state j
 * steps ahead. One scramble emits outputs 4t..4t+3; four vector
 * transitions advance every lane 4 steps. Lane 0 retraces the exact
 * serial orbit, so the post-fill engine state is read back from it.
 */
struct XoLanesAvx2
{
    __m256i s0, s1, s2, s3;
};

UNCERTAIN_TARGET_AVX2 inline XoLanesAvx2
xoEnterLanes(std::uint64_t state[4])
{
    std::uint64_t lane[4][4];
    std::uint64_t cur[4] = {state[0], state[1], state[2], state[3]};
    for (int j = 0; j < 4; ++j) {
        for (int w = 0; w < 4; ++w)
            lane[j][w] = cur[w];
        xoStep(cur);
    }
    XoLanesAvx2 v;
    v.s0 = _mm256_setr_epi64x(
        static_cast<long long>(lane[0][0]),
        static_cast<long long>(lane[1][0]),
        static_cast<long long>(lane[2][0]),
        static_cast<long long>(lane[3][0]));
    v.s1 = _mm256_setr_epi64x(
        static_cast<long long>(lane[0][1]),
        static_cast<long long>(lane[1][1]),
        static_cast<long long>(lane[2][1]),
        static_cast<long long>(lane[3][1]));
    v.s2 = _mm256_setr_epi64x(
        static_cast<long long>(lane[0][2]),
        static_cast<long long>(lane[1][2]),
        static_cast<long long>(lane[2][2]),
        static_cast<long long>(lane[3][2]));
    v.s3 = _mm256_setr_epi64x(
        static_cast<long long>(lane[0][3]),
        static_cast<long long>(lane[1][3]),
        static_cast<long long>(lane[2][3]),
        static_cast<long long>(lane[3][3]));
    return v;
}

UNCERTAIN_TARGET_AVX2 inline void
xoAdvance4(XoLanesAvx2& v)
{
    for (int k = 0; k < 4; ++k) {
        const __m256i t = _mm256_slli_epi64(v.s1, 17);
        v.s2 = _mm256_xor_si256(v.s2, v.s0);
        v.s3 = _mm256_xor_si256(v.s3, v.s1);
        v.s1 = _mm256_xor_si256(v.s1, v.s2);
        v.s0 = _mm256_xor_si256(v.s0, v.s3);
        v.s2 = _mm256_xor_si256(v.s2, t);
        v.s3 = xoRotl(v.s3, 45);
    }
}

UNCERTAIN_TARGET_AVX2 inline void
xoExitLanes(const XoLanesAvx2& v, std::uint64_t state[4])
{
    // Lane 0 is the serial state after all vectorized steps.
    state[0] =
        static_cast<std::uint64_t>(_mm256_extract_epi64(v.s0, 0));
    state[1] =
        static_cast<std::uint64_t>(_mm256_extract_epi64(v.s1, 0));
    state[2] =
        static_cast<std::uint64_t>(_mm256_extract_epi64(v.s2, 0));
    state[3] =
        static_cast<std::uint64_t>(_mm256_extract_epi64(v.s3, 0));
}

UNCERTAIN_TARGET_AVX2 void
xoshiroFillU64Avx2(std::uint64_t state[4], std::uint64_t* out,
                   std::size_t n)
{
    if (n < 8) {
        xoshiroFillU64Scalar(state, out, n);
        return;
    }
    XoLanesAvx2 v = xoEnterLanes(state);
    std::size_t i = 0;
    const std::size_t vecEnd = n & ~std::size_t{3};
    for (; i < vecEnd; i += 4) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            xoScramble(v.s1));
        xoAdvance4(v);
    }
    xoExitLanes(v, state);
    if (i < n)
        xoshiroFillU64Scalar(state, out + i, n - i);
}

/**
 * Exact u64 -> double of y = word >> 11 (< 2^53): convert the 21-bit
 * high and 32-bit low halves separately with the 2^52 bias trick and
 * recombine as hi * 2^32 + lo — every step exact, so the result is
 * bit-identical to static_cast<double>(y).
 */
UNCERTAIN_TARGET_AVX2 inline __m256d
wordsToDoubleAvx2(__m256i words, bool open)
{
    const __m256i bias = _mm256_set1_epi64x(0x4330000000000000LL);
    const __m256d biasD = _mm256_set1_pd(4503599627370496.0); // 2^52
    const __m256i y = _mm256_srli_epi64(words, 11);
    const __m256i hi = _mm256_srli_epi64(y, 32);
    const __m256i lo =
        _mm256_and_si256(y, _mm256_set1_epi64x(0xFFFFFFFFLL));
    const __m256d hiD = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(hi, bias)), biasD);
    const __m256d loD = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(lo, bias)), biasD);
    __m256d d = _mm256_add_pd(
        _mm256_mul_pd(hiD, _mm256_set1_pd(4294967296.0)), loD);
    if (open)
        d = _mm256_add_pd(d, _mm256_set1_pd(0.5));
    return _mm256_mul_pd(d, _mm256_set1_pd(0x1.0p-53));
}

UNCERTAIN_TARGET_AVX2 void
xoshiroFillDoubleAvx2(std::uint64_t state[4], double* out,
                      std::size_t n, bool open)
{
    if (n < 8) {
        xoshiroFillDoubleScalar(state, out, n, open);
        return;
    }
    XoLanesAvx2 v = xoEnterLanes(state);
    std::size_t i = 0;
    const std::size_t vecEnd = n & ~std::size_t{3};
    for (; i < vecEnd; i += 4) {
        _mm256_storeu_pd(out + i,
                         wordsToDoubleAvx2(xoScramble(v.s1), open));
        xoAdvance4(v);
    }
    xoExitLanes(v, state);
    if (i < n)
        xoshiroFillDoubleScalar(state, out + i, n - i, open);
}

// ---- ziggurat fast-accept pass ---------------------------------------

UNCERTAIN_TARGET_AVX2 std::size_t
zigguratAcceptAvx2(const std::uint64_t* words, std::size_t n,
                   const std::uint32_t* kn, const double* wn, double mu,
                   double sigma, double* out, std::uint32_t* rejects)
{
    const __m256d muV = _mm256_set1_pd(mu);
    const __m256d sigmaV = _mm256_set1_pd(sigma);
    const __m128i signFlip = _mm_set1_epi32(
        static_cast<std::int32_t>(0x80000000u));
    std::size_t nRejects = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // hz and the 7-bit layer indices come out via scalar loads:
        // the 128-entry tables are too small for vpgatherdd to win —
        // measured on AVX2 Xeons, the gather pair costs ~1.4x the
        // whole accept loop done with scalar table loads + inserts.
        const auto h0 = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(words[i]));
        const auto h1 = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(words[i + 1]));
        const auto h2 = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(words[i + 2]));
        const auto h3 = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(words[i + 3]));
        const std::uint32_t i0 = static_cast<std::uint32_t>(h0) & 127u;
        const std::uint32_t i1 = static_cast<std::uint32_t>(h1) & 127u;
        const std::uint32_t i2 = static_cast<std::uint32_t>(h2) & 127u;
        const std::uint32_t i3 = static_cast<std::uint32_t>(h3) & 127u;
        const __m128i hz = _mm_setr_epi32(h0, h1, h2, h3);
        const __m128i knV = _mm_setr_epi32(
            static_cast<std::int32_t>(kn[i0]),
            static_cast<std::int32_t>(kn[i1]),
            static_cast<std::int32_t>(kn[i2]),
            static_cast<std::int32_t>(kn[i3]));
        const __m256d wnV =
            _mm256_setr_pd(wn[i0], wn[i1], wn[i2], wn[i3]);
        // |hz| as a bit pattern: abs(INT32_MIN) stays 0x80000000,
        // exactly the scalar unsigned-negation magnitude.
        const __m128i mag = _mm_abs_epi32(hz);
        // Unsigned mag < kn via sign-flipped signed compare.
        const __m128i accept =
            _mm_cmpgt_epi32(_mm_xor_si128(knV, signFlip),
                            _mm_xor_si128(mag, signFlip));
        const __m256d x = _mm256_mul_pd(_mm256_cvtepi32_pd(hz), wnV);
        // mu + sigma * x with explicit mul then add: matches the
        // FMA-free scalar path bit for bit.
        _mm256_storeu_pd(
            out + i, _mm256_add_pd(muV, _mm256_mul_pd(sigmaV, x)));
        int miss = _mm_movemask_ps(_mm_castsi128_ps(accept)) ^ 0xF;
        while (miss != 0) {
            const int lane = __builtin_ctz(static_cast<unsigned>(miss));
            miss &= miss - 1;
            rejects[nRejects++] = static_cast<std::uint32_t>(
                i + static_cast<std::size_t>(lane));
        }
    }
    return zigguratAcceptScalar(words, i, n, kn, wn, mu, sigma, out,
                                rejects, nRejects);
}

#endif // UNCERTAIN_SIMD_X86

// =====================================================================
// NEON: 2-lane double packs for the f64 strips (aarch64). Everything
// else falls back to the scalar emulation.
// =====================================================================

#if defined(UNCERTAIN_SIMD_NEON)

// Per-op loops, as in the x86 layers: the op dispatch must not sit
// inside the vector loop (compilers do not unswitch intrinsics).
template <BinF64 Op>
void
binaryF64NeonLoop(const double* a, const double* b, double* out,
                  std::size_t n2)
{
    for (std::size_t i = 0; i < n2; i += 2) {
        const float64x2_t va = vld1q_f64(a + i);
        const float64x2_t vb = vld1q_f64(b + i);
        float64x2_t r;
        if constexpr (Op == BinF64::Add)
            r = vaddq_f64(va, vb);
        else if constexpr (Op == BinF64::Sub)
            r = vsubq_f64(va, vb);
        else if constexpr (Op == BinF64::Mul)
            r = vmulq_f64(va, vb);
        else if constexpr (Op == BinF64::Div)
            r = vdivq_f64(va, vb);
        else if constexpr (Op == BinF64::Min)
            r = vbslq_f64(vcltq_f64(vb, va), vb, va);
        else {
            static_assert(Op == BinF64::Max);
            r = vbslq_f64(vcltq_f64(va, vb), vb, va);
        }
        vst1q_f64(out + i, r);
    }
}

void
binaryF64Neon(BinF64 op, const double* a, const double* b, double* out,
              std::size_t n)
{
    const std::size_t n2 = n & ~std::size_t{1};
    switch (op) {
    case BinF64::Add: binaryF64NeonLoop<BinF64::Add>(a, b, out, n2); break;
    case BinF64::Sub: binaryF64NeonLoop<BinF64::Sub>(a, b, out, n2); break;
    case BinF64::Mul: binaryF64NeonLoop<BinF64::Mul>(a, b, out, n2); break;
    case BinF64::Div: binaryF64NeonLoop<BinF64::Div>(a, b, out, n2); break;
    case BinF64::Min: binaryF64NeonLoop<BinF64::Min>(a, b, out, n2); break;
    case BinF64::Max: binaryF64NeonLoop<BinF64::Max>(a, b, out, n2); break;
    }
    if (n2 < n)
        binaryF64Scalar(op, a + n2, b + n2, out + n2, n - n2);
}

template <BinF64 Op, bool ConstOnB>
void
binaryF64ConstNeonLoop(const double* col, double c, double* out,
                       std::size_t n2)
{
    const float64x2_t vc = vdupq_n_f64(c);
    for (std::size_t i = 0; i < n2; i += 2) {
        const float64x2_t vcol = vld1q_f64(col + i);
        const float64x2_t va = ConstOnB ? vcol : vc;
        const float64x2_t vb = ConstOnB ? vc : vcol;
        float64x2_t r;
        if constexpr (Op == BinF64::Add)
            r = vaddq_f64(va, vb);
        else if constexpr (Op == BinF64::Sub)
            r = vsubq_f64(va, vb);
        else if constexpr (Op == BinF64::Mul)
            r = vmulq_f64(va, vb);
        else if constexpr (Op == BinF64::Div)
            r = vdivq_f64(va, vb);
        else if constexpr (Op == BinF64::Min)
            r = vbslq_f64(vcltq_f64(vb, va), vb, va);
        else {
            static_assert(Op == BinF64::Max);
            r = vbslq_f64(vcltq_f64(va, vb), vb, va);
        }
        vst1q_f64(out + i, r);
    }
}

template <bool ConstOnB>
void
binaryF64ConstNeon(BinF64 op, const double* col, double c, double* out,
                   std::size_t n)
{
    const std::size_t n2 = n & ~std::size_t{1};
    switch (op) {
    case BinF64::Add:
        binaryF64ConstNeonLoop<BinF64::Add, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Sub:
        binaryF64ConstNeonLoop<BinF64::Sub, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Mul:
        binaryF64ConstNeonLoop<BinF64::Mul, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Div:
        binaryF64ConstNeonLoop<BinF64::Div, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Min:
        binaryF64ConstNeonLoop<BinF64::Min, ConstOnB>(col, c, out, n2);
        break;
    case BinF64::Max:
        binaryF64ConstNeonLoop<BinF64::Max, ConstOnB>(col, c, out, n2);
        break;
    }
    if (n2 < n) {
        if constexpr (ConstOnB)
            binaryF64ConstBScalar(op, col + n2, c, out + n2, n - n2);
        else
            binaryF64ConstAScalar(op, c, col + n2, out + n2, n - n2);
    }
}

void
negF64Neon(const double* a, double* out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_f64(out + i, vnegq_f64(vld1q_f64(a + i)));
    if (i < n)
        negF64Scalar(a + i, out + i, n - i);
}

#endif // UNCERTAIN_SIMD_NEON

} // namespace

// =====================================================================
// Public dispatch.
// =====================================================================

Isa
compiledIsa()
{
#if defined(UNCERTAIN_SIMD_X86)
    return Isa::Avx2;
#elif defined(UNCERTAIN_SIMD_NEON)
    return Isa::Neon;
#else
    return Isa::Scalar;
#endif
}

Isa
detectedIsa()
{
    static const Isa isa = detectIsaOnce();
    return isa;
}

Isa
activeIsa()
{
    if (gForceScalar.load(std::memory_order_relaxed))
        return Isa::Scalar;
    return clampIsa(compiledIsa());
}

void
setForceScalar(bool force)
{
    gForceScalar.store(force, std::memory_order_relaxed);
}

bool
forceScalar()
{
    return gForceScalar.load(std::memory_order_relaxed);
}

std::size_t
laneWidth(Isa isa)
{
    switch (clampIsa(isa)) {
    case Isa::Avx2: return 4;
    case Isa::Sse2: return 2;
    case Isa::Neon: return 2;
    case Isa::Scalar: break;
    }
    return 1;
}

const char*
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Avx2: return "avx2";
    case Isa::Sse2: return "sse2";
    case Isa::Neon: return "neon";
    case Isa::Scalar: break;
    }
    return "scalar";
}

void
binaryF64(Isa isa, BinF64 op, const double* a, const double* b,
          double* out, std::size_t n)
{
    switch (clampIsa(isa)) {
#if defined(UNCERTAIN_SIMD_X86)
    case Isa::Avx2: binaryF64Avx2(op, a, b, out, n); return;
#if defined(__SSE2__)
    case Isa::Sse2: binaryF64Sse2(op, a, b, out, n); return;
#endif
#elif defined(UNCERTAIN_SIMD_NEON)
    case Isa::Neon: binaryF64Neon(op, a, b, out, n); return;
#endif
    default: break;
    }
    binaryF64Scalar(op, a, b, out, n);
}

void
binaryF64ConstB(Isa isa, BinF64 op, const double* a, double b,
                double* out, std::size_t n)
{
    switch (clampIsa(isa)) {
#if defined(UNCERTAIN_SIMD_X86)
    case Isa::Avx2: binaryF64ConstAvx2<true>(op, a, b, out, n); return;
#if defined(__SSE2__)
    case Isa::Sse2: binaryF64ConstSse2<true>(op, a, b, out, n); return;
#endif
#elif defined(UNCERTAIN_SIMD_NEON)
    case Isa::Neon: binaryF64ConstNeon<true>(op, a, b, out, n); return;
#endif
    default: break;
    }
    binaryF64ConstBScalar(op, a, b, out, n);
}

void
binaryF64ConstA(Isa isa, BinF64 op, double a, const double* b,
                double* out, std::size_t n)
{
    switch (clampIsa(isa)) {
#if defined(UNCERTAIN_SIMD_X86)
    case Isa::Avx2: binaryF64ConstAvx2<false>(op, b, a, out, n); return;
#if defined(__SSE2__)
    case Isa::Sse2: binaryF64ConstSse2<false>(op, b, a, out, n); return;
#endif
#elif defined(UNCERTAIN_SIMD_NEON)
    case Isa::Neon: binaryF64ConstNeon<false>(op, b, a, out, n); return;
#endif
    default: break;
    }
    binaryF64ConstAScalar(op, a, b, out, n);
}

void
compareF64(Isa isa, Cmp op, const double* a, const double* b,
           std::uint8_t* out, std::size_t n)
{
    switch (clampIsa(isa)) {
#if defined(UNCERTAIN_SIMD_X86)
    case Isa::Avx2: compareF64Avx2(op, a, b, out, n); return;
#if defined(__SSE2__)
    case Isa::Sse2: compareF64Sse2(op, a, b, out, n); return;
#endif
#endif
    default: break;
    }
    compareF64Scalar(op, a, b, out, n);
}

void
binaryI32(Isa isa, BinI32 op, const std::int32_t* a,
          const std::int32_t* b, std::int32_t* out, std::size_t n)
{
#if defined(UNCERTAIN_SIMD_X86)
    if (clampIsa(isa) == Isa::Avx2) {
        binaryI32Avx2(op, a, b, out, n);
        return;
    }
#endif
    (void)isa;
    binaryI32Scalar(op, a, b, out, n);
}

void
compareI32(Isa isa, Cmp op, const std::int32_t* a, const std::int32_t* b,
           std::uint8_t* out, std::size_t n)
{
#if defined(UNCERTAIN_SIMD_X86)
    if (clampIsa(isa) == Isa::Avx2) {
        compareI32Avx2(op, a, b, out, n);
        return;
    }
#endif
    (void)isa;
    compareI32Scalar(op, a, b, out, n);
}

void
binaryI64(Isa isa, BinI64 op, const std::int64_t* a,
          const std::int64_t* b, std::int64_t* out, std::size_t n)
{
#if defined(UNCERTAIN_SIMD_X86)
    if (clampIsa(isa) == Isa::Avx2) {
        binaryI64Avx2(op, a, b, out, n);
        return;
    }
#endif
    (void)isa;
    binaryI64Scalar(op, a, b, out, n);
}

void
boolBinary(Isa isa, BoolOp op, const std::uint8_t* a,
           const std::uint8_t* b, std::uint8_t* out, std::size_t n)
{
    switch (clampIsa(isa)) {
#if defined(UNCERTAIN_SIMD_X86)
    case Isa::Avx2: boolBinaryAvx2(op, a, b, out, n); return;
#if defined(__SSE2__)
    case Isa::Sse2: boolBinarySse2(op, a, b, out, n); return;
#endif
#endif
    default: break;
    }
    boolBinaryScalar(op, a, b, out, n);
}

void
boolNot(Isa isa, const std::uint8_t* a, std::uint8_t* out, std::size_t n)
{
    switch (clampIsa(isa)) {
#if defined(UNCERTAIN_SIMD_X86)
    case Isa::Avx2: boolNotAvx2(a, out, n); return;
#if defined(__SSE2__)
    case Isa::Sse2: boolNotSse2(a, out, n); return;
#endif
#endif
    default: break;
    }
    boolNotScalar(a, out, n);
}

void
negF64(Isa isa, const double* a, double* out, std::size_t n)
{
    switch (clampIsa(isa)) {
#if defined(UNCERTAIN_SIMD_X86)
    case Isa::Avx2: negF64Avx2(a, out, n); return;
#if defined(__SSE2__)
    case Isa::Sse2: negF64Sse2(a, out, n); return;
#endif
#elif defined(UNCERTAIN_SIMD_NEON)
    case Isa::Neon: negF64Neon(a, out, n); return;
#endif
    default: break;
    }
    negF64Scalar(a, out, n);
}

void
selectF64(Isa isa, const std::uint8_t* c, const double* x,
          const double* y, double* out, std::size_t n)
{
#if defined(UNCERTAIN_SIMD_X86)
    if (clampIsa(isa) == Isa::Avx2) {
        selectF64Avx2(c, x, y, out, n);
        return;
    }
#endif
    (void)isa;
    selectF64Scalar(c, x, y, out, n);
}

void
xoshiroFillU64(Isa isa, std::uint64_t state[4], std::uint64_t* out,
               std::size_t n)
{
#if defined(UNCERTAIN_SIMD_X86)
    if (clampIsa(isa) == Isa::Avx2) {
        xoshiroFillU64Avx2(state, out, n);
        return;
    }
#endif
    (void)isa;
    xoshiroFillU64Scalar(state, out, n);
}

void
xoshiroFillDouble(Isa isa, std::uint64_t state[4], double* out,
                  std::size_t n, bool open)
{
#if defined(UNCERTAIN_SIMD_X86)
    if (clampIsa(isa) == Isa::Avx2) {
        xoshiroFillDoubleAvx2(state, out, n, open);
        return;
    }
#endif
    (void)isa;
    xoshiroFillDoubleScalar(state, out, n, open);
}

std::size_t
zigguratAccept(Isa isa, const std::uint64_t* words, std::size_t n,
               const std::uint32_t* kn, const double* wn, double mu,
               double sigma, double* out, std::uint32_t* rejects)
{
#if defined(UNCERTAIN_SIMD_X86)
    if (clampIsa(isa) == Isa::Avx2)
        return zigguratAcceptAvx2(words, n, kn, wn, mu, sigma, out,
                                  rejects);
#endif
    (void)isa;
    return zigguratAcceptScalar(words, 0, n, kn, wn, mu, sigma, out,
                                rejects, 0);
}

} // namespace simd
} // namespace uncertain
