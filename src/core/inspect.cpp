#include "core/inspect.hpp"

#include <iomanip>
#include <sstream>

namespace uncertain {
namespace core {

std::string
Description::toString() const
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(3);
    out << mean << " +/- " << stddev << " [95%: " << q025 << " .. "
        << q975 << "] (" << samples << " samples)";
    return out.str();
}

} // namespace core
} // namespace uncertain
