/**
 * @file
 * Named elementwise operator functors.
 *
 * The lifted operators (core/operators.hpp) and functions
 * (core/functions.hpp) historically captured their semantics in
 * anonymous lambdas. Each lambda expression has a unique closure
 * type, which was fine for the CSE pass (it keys on std::type_index)
 * but makes the operator unrecognizable to anything else — in
 * particular the SIMD execution backend (core/simd.hpp), which maps
 * an operator *type* to a vector kernel at plan-build time.
 *
 * These functors are drop-in replacements: empty types (so
 * StepInfo::cseSafe stays true via std::is_empty_v), generic call
 * operators with SFINAE-friendly trailing return types (so the
 * lifted operators keep working over arbitrary base types, not just
 * arithmetic ones), and exactly the same per-element arithmetic as
 * the lambdas they replace. simd::VectorForm specializes on them to
 * attach lane-parallel kernels; unknown functors simply keep the
 * scalar strip loop.
 *
 * Min/Max deliberately spell out the std::min/std::max selection
 * ((y < x) ? y : x) rather than delegating, so the vector kernels
 * can reproduce the exact semantics — including which operand is
 * returned for equal values and NaN — with a compare + blend.
 */

#ifndef UNCERTAIN_CORE_OPS_HPP
#define UNCERTAIN_CORE_OPS_HPP

#include <utility>

namespace uncertain {
namespace core {
namespace ops {

// ---- arithmetic ------------------------------------------------------

struct Add
{
    template <typename X, typename Y>
    constexpr auto
    operator()(const X& x, const Y& y) const -> decltype(x + y)
    {
        return x + y;
    }
};

struct Sub
{
    template <typename X, typename Y>
    constexpr auto
    operator()(const X& x, const Y& y) const -> decltype(x - y)
    {
        return x - y;
    }
};

struct Mul
{
    template <typename X, typename Y>
    constexpr auto
    operator()(const X& x, const Y& y) const -> decltype(x * y)
    {
        return x * y;
    }
};

struct Div
{
    template <typename X, typename Y>
    constexpr auto
    operator()(const X& x, const Y& y) const -> decltype(x / y)
    {
        return x / y;
    }
};

struct Neg
{
    template <typename X>
    constexpr auto
    operator()(const X& x) const -> decltype(-x)
    {
        return -x;
    }
};

/** std::min semantics: (y < x) ? y : x — returns x on ties and NaN. */
struct Min
{
    template <typename X>
    constexpr X
    operator()(const X& x, const X& y) const
    {
        return (y < x) ? y : x;
    }
};

/** std::max semantics: (x < y) ? y : x — returns x on ties and NaN. */
struct Max
{
    template <typename X>
    constexpr X
    operator()(const X& x, const X& y) const
    {
        return (x < y) ? y : x;
    }
};

// ---- order and equality (result coerced to bool, as the lifted
// ---- compare operators always did) ----------------------------------

struct Lt
{
    template <typename X, typename Y>
    constexpr bool
    operator()(const X& x, const Y& y) const
    {
        return x < y;
    }
};

struct Gt
{
    template <typename X, typename Y>
    constexpr bool
    operator()(const X& x, const Y& y) const
    {
        return x > y;
    }
};

struct Le
{
    template <typename X, typename Y>
    constexpr bool
    operator()(const X& x, const Y& y) const
    {
        return x <= y;
    }
};

struct Ge
{
    template <typename X, typename Y>
    constexpr bool
    operator()(const X& x, const Y& y) const
    {
        return x >= y;
    }
};

struct Eq
{
    template <typename X, typename Y>
    constexpr bool
    operator()(const X& x, const Y& y) const
    {
        return x == y;
    }
};

struct Ne
{
    template <typename X, typename Y>
    constexpr bool
    operator()(const X& x, const Y& y) const
    {
        return x != y;
    }
};

// ---- logical (no short-circuiting inside a sampling pass) -----------

struct And
{
    constexpr bool operator()(bool x, bool y) const { return x && y; }
};

struct Or
{
    constexpr bool operator()(bool x, bool y) const { return x || y; }
};

struct Not
{
    constexpr bool operator()(bool x) const { return !x; }
};

// ---- ternary selection ----------------------------------------------

/** cond ? x : y, the kernel behind uncertain::select. */
struct Select
{
    template <typename X>
    constexpr X
    operator()(bool c, const X& x, const X& y) const
    {
        return c ? x : y;
    }
};

} // namespace ops
} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_OPS_HPP
