#include "core/parallel.hpp"

#include <algorithm>

namespace uncertain {
namespace core {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    threads_ = threads;
    if (threads_ < 2)
        return; // inline mode: no workers
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            task = std::move(queue_.back());
            queue_.pop_back();
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        bool idle;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            idle = --pending_ == 0;
        }
        if (idle)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body)
{
    if (n == 0)
        return;
    chunk = std::max<std::size_t>(chunk, 1);

    if (threads_ < 2) {
        for (std::size_t begin = 0; begin < n; begin += chunk)
            body(begin, std::min(begin + chunk, n));
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        UNCERTAIN_ASSERT(pending_ == 0 && queue_.empty(),
                         "ThreadPool::parallelFor is not reentrant");
        firstError_ = nullptr;
        for (std::size_t begin = 0; begin < n; begin += chunk) {
            std::size_t end = std::min(begin + chunk, n);
            queue_.emplace_back([&body, begin, end] { body(begin, end); });
        }
        // Reverse so workers pop chunks in index order (cache locality
        // of adjacent output writes; correctness does not depend on
        // order).
        std::reverse(queue_.begin(), queue_.end());
        pending_ = queue_.size();
    }
    wake_.notify_all();

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    if (firstError_) {
        auto error = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

} // namespace core
} // namespace uncertain
