/**
 * @file
 * Plan-facing SIMD layer: the execution-backend selector and the
 * compile-time mapping from named operator functors (core/ops.hpp)
 * to the vector kernels in core/simd_kernels.hpp.
 *
 * batch_plan.hpp consults VectorForm<F, R, As...> while building a
 * step: when the specialization for the step's functor and operand
 * types exists, the step gains an alternative strip micro-op that
 * processes whole lanes through simd_kernels; otherwise the scalar
 * strip loop stands. The trait is pure type-level — it never
 * instantiates F — so lifted operators over user-defined base types
 * are untouched.
 *
 * The kernels this maps onto are bit-identical to the scalar loops
 * (no FMA contraction, no reassociation, compare+blend Min/Max; see
 * simd_kernels.hpp), which is what lets the plan switch backends
 * without changing a single output bit.
 */

#ifndef UNCERTAIN_CORE_SIMD_HPP
#define UNCERTAIN_CORE_SIMD_HPP

#include <cstddef>
#include <cstdint>

#include "core/ops.hpp"
#include "core/simd_kernels.hpp"

namespace uncertain {
namespace simd {

/**
 * Which strip implementation a compiled plan uses.
 *
 * - Auto:   compile fused elementwise groups to native fragments when
 *           the plan-level JIT is available (jit::available()), else
 *           vectorize when activeIsa() reports a usable vector unit
 *           at plan-build time, else compile the scalar strips.
 * - Jit:    prefer native fragments for every fused group. Safe on
 *           any machine: a group the emitter refuses (unsupported op,
 *           no x86-64, no executable memory, -DUNCERTAIN_JIT=OFF)
 *           falls back to the SIMD strips, which in turn clamp to
 *           the detected ISA — the fallback order is always
 *           jit -> simd -> scalar, bit-identical at every rung.
 * - Simd:   always route vectorizable strips through the kernel
 *           layer. Safe on any machine — the kernels clamp to the
 *           detected ISA and fall back to their scalar emulation —
 *           so tests can exercise the SIMD code path everywhere.
 * - Scalar: always the plain scalar interpreter strips.
 */
enum class ExecBackend : std::uint8_t
{
    Auto = 0,
    Simd = 1,
    Scalar = 2,
    Jit = 3,
};

/** Human-readable backend name ("auto", "jit", "simd", "scalar"). */
inline const char*
backendName(ExecBackend backend)
{
    switch (backend) {
    case ExecBackend::Jit: return "jit";
    case ExecBackend::Simd: return "simd";
    case ExecBackend::Scalar: return "scalar";
    case ExecBackend::Auto: break;
    }
    return "auto";
}

/**
 * VectorForm<F, R, As...>: does functor F applied to operand base
 * types As... producing base type R have a vector kernel? The
 * primary template says no; each specialization below wires one
 * (functor, signature) pair to a kernel. `run` takes column/register
 * pointers in *storage* types (bool columns store uint8_t bytes).
 */
template <typename F, typename R, typename... As>
struct VectorForm
{
    static constexpr bool available = false;
};

// ---- double arithmetic ----------------------------------------------

#define UNCERTAIN_SIMD_BIN_F64(Functor, Kernel)                          \
    template <>                                                          \
    struct VectorForm<core::ops::Functor, double, double, double>        \
    {                                                                    \
        static constexpr bool available = true;                          \
        static void                                                      \
        run(Isa isa, const double* a, const double* b, double* out,      \
            std::size_t n)                                               \
        {                                                                \
            binaryF64(isa, BinF64::Kernel, a, b, out, n);                \
        }                                                                \
        /* Broadcast-constant forms: one operand is a point mass, so  */ \
        /* the kernel holds it in a register instead of streaming a   */ \
        /* splatted column. Same arithmetic, one fewer load stream.   */ \
        static void                                                      \
        runConstB(Isa isa, const double* a, double b, double* out,       \
                  std::size_t n)                                         \
        {                                                                \
            binaryF64ConstB(isa, BinF64::Kernel, a, b, out, n);          \
        }                                                                \
        static void                                                      \
        runConstA(Isa isa, double a, const double* b, double* out,       \
                  std::size_t n)                                         \
        {                                                                \
            binaryF64ConstA(isa, BinF64::Kernel, a, b, out, n);          \
        }                                                                \
    }

UNCERTAIN_SIMD_BIN_F64(Add, Add);
UNCERTAIN_SIMD_BIN_F64(Sub, Sub);
UNCERTAIN_SIMD_BIN_F64(Mul, Mul);
UNCERTAIN_SIMD_BIN_F64(Div, Div);
UNCERTAIN_SIMD_BIN_F64(Min, Min);
UNCERTAIN_SIMD_BIN_F64(Max, Max);

#undef UNCERTAIN_SIMD_BIN_F64

template <>
struct VectorForm<core::ops::Neg, double, double>
{
    static constexpr bool available = true;
    static void
    run(Isa isa, const double* a, double* out, std::size_t n)
    {
        negF64(isa, a, out, n);
    }
};

// ---- double comparisons (bool columns store 0/1 bytes) --------------

#define UNCERTAIN_SIMD_CMP_F64(Functor, Pred)                            \
    template <>                                                          \
    struct VectorForm<core::ops::Functor, bool, double, double>          \
    {                                                                    \
        static constexpr bool available = true;                          \
        static void                                                      \
        run(Isa isa, const double* a, const double* b,                   \
            std::uint8_t* out, std::size_t n)                            \
        {                                                                \
            compareF64(isa, Cmp::Pred, a, b, out, n);                    \
        }                                                                \
    }

UNCERTAIN_SIMD_CMP_F64(Lt, Lt);
UNCERTAIN_SIMD_CMP_F64(Gt, Gt);
UNCERTAIN_SIMD_CMP_F64(Le, Le);
UNCERTAIN_SIMD_CMP_F64(Ge, Ge);
UNCERTAIN_SIMD_CMP_F64(Eq, Eq);
UNCERTAIN_SIMD_CMP_F64(Ne, Ne);

#undef UNCERTAIN_SIMD_CMP_F64

// ---- int32 arithmetic and comparisons -------------------------------

#define UNCERTAIN_SIMD_BIN_I32(Functor, Kernel)                          \
    template <>                                                          \
    struct VectorForm<core::ops::Functor, std::int32_t, std::int32_t,    \
                      std::int32_t>                                      \
    {                                                                    \
        static constexpr bool available = true;                          \
        static void                                                      \
        run(Isa isa, const std::int32_t* a, const std::int32_t* b,       \
            std::int32_t* out, std::size_t n)                            \
        {                                                                \
            binaryI32(isa, BinI32::Kernel, a, b, out, n);                \
        }                                                                \
    }

UNCERTAIN_SIMD_BIN_I32(Add, Add);
UNCERTAIN_SIMD_BIN_I32(Sub, Sub);
UNCERTAIN_SIMD_BIN_I32(Mul, Mul);
UNCERTAIN_SIMD_BIN_I32(Min, Min);
UNCERTAIN_SIMD_BIN_I32(Max, Max);

#undef UNCERTAIN_SIMD_BIN_I32

#define UNCERTAIN_SIMD_CMP_I32(Functor, Pred)                            \
    template <>                                                          \
    struct VectorForm<core::ops::Functor, bool, std::int32_t,            \
                      std::int32_t>                                      \
    {                                                                    \
        static constexpr bool available = true;                          \
        static void                                                      \
        run(Isa isa, const std::int32_t* a, const std::int32_t* b,       \
            std::uint8_t* out, std::size_t n)                            \
        {                                                                \
            compareI32(isa, Cmp::Pred, a, b, out, n);                    \
        }                                                                \
    }

UNCERTAIN_SIMD_CMP_I32(Lt, Lt);
UNCERTAIN_SIMD_CMP_I32(Gt, Gt);
UNCERTAIN_SIMD_CMP_I32(Le, Le);
UNCERTAIN_SIMD_CMP_I32(Ge, Ge);
UNCERTAIN_SIMD_CMP_I32(Eq, Eq);
UNCERTAIN_SIMD_CMP_I32(Ne, Ne);

#undef UNCERTAIN_SIMD_CMP_I32

// ---- int64 arithmetic -----------------------------------------------

#define UNCERTAIN_SIMD_BIN_I64(Functor, Kernel)                          \
    template <>                                                          \
    struct VectorForm<core::ops::Functor, std::int64_t, std::int64_t,    \
                      std::int64_t>                                      \
    {                                                                    \
        static constexpr bool available = true;                          \
        static void                                                      \
        run(Isa isa, const std::int64_t* a, const std::int64_t* b,       \
            std::int64_t* out, std::size_t n)                            \
        {                                                                \
            binaryI64(isa, BinI64::Kernel, a, b, out, n);                \
        }                                                                \
    }

UNCERTAIN_SIMD_BIN_I64(Add, Add);
UNCERTAIN_SIMD_BIN_I64(Sub, Sub);

#undef UNCERTAIN_SIMD_BIN_I64

// ---- logical --------------------------------------------------------

template <>
struct VectorForm<core::ops::And, bool, bool, bool>
{
    static constexpr bool available = true;
    static void
    run(Isa isa, const std::uint8_t* a, const std::uint8_t* b,
        std::uint8_t* out, std::size_t n)
    {
        boolBinary(isa, BoolOp::And, a, b, out, n);
    }
};

template <>
struct VectorForm<core::ops::Or, bool, bool, bool>
{
    static constexpr bool available = true;
    static void
    run(Isa isa, const std::uint8_t* a, const std::uint8_t* b,
        std::uint8_t* out, std::size_t n)
    {
        boolBinary(isa, BoolOp::Or, a, b, out, n);
    }
};

template <>
struct VectorForm<core::ops::Not, bool, bool>
{
    static constexpr bool available = true;
    static void
    run(Isa isa, const std::uint8_t* a, std::uint8_t* out,
        std::size_t n)
    {
        boolNot(isa, a, out, n);
    }
};

// ---- ternary selection ----------------------------------------------

template <>
struct VectorForm<core::ops::Select, double, bool, double, double>
{
    static constexpr bool available = true;
    static void
    run(Isa isa, const std::uint8_t* c, const double* x,
        const double* y, double* out, std::size_t n)
    {
        selectF64(isa, c, x, y, out, n);
    }
};

} // namespace simd
} // namespace uncertain

#endif // UNCERTAIN_CORE_SIMD_HPP
