/**
 * @file
 * Uncertain<T>: a first-order type for uncertain data.
 *
 * An Uncertain<T> encapsulates a random variable of base type T. The
 * overloaded operators in core/operators.hpp construct a Bayesian
 * network (see core/node.hpp); nothing is sampled until the program
 * asks a question: a conditional (pr(), the implicit boolean
 * conversion) or the evaluation operator E (expectedValue()).
 *
 * Conditionals evaluate *evidence*: `(speed > 4).pr(0.9)` asks
 * whether Pr[speed > 4] exceeds 0.9, executed as a sequential
 * hypothesis test that draws only as many samples as that particular
 * question needs (paper sections 3.4 and 4.3).
 */

#ifndef UNCERTAIN_CORE_UNCERTAIN_HPP
#define UNCERTAIN_CORE_UNCERTAIN_HPP

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/batch.hpp"
#include "core/conditional.hpp"
#include "core/node.hpp"
#include "core/parallel.hpp"
#include "random/distribution.hpp"
#include "support/rng.hpp"

namespace uncertain {

template <typename T>
class Uncertain;

namespace core {

/** Trait/concept: is a type an instantiation of Uncertain? */
template <typename T>
struct IsUncertainType : std::false_type
{};

template <typename T>
struct IsUncertainType<Uncertain<T>> : std::true_type
{};

template <typename T>
concept AnUncertain = IsUncertainType<std::decay_t<T>>::value;

template <typename T>
concept NotUncertain = !AnUncertain<T>;

/** Types whose samples can be averaged by E. */
template <typename T>
concept Accumulable = requires(T a, T b, double d) {
    { a + b } -> std::convertible_to<T>;
    { a / d } -> std::convertible_to<T>;
};

namespace detail {

/**
 * Attempt to answer "Pr[cond] > threshold" in closed form through the
 * exact enumeration backend. Returns the finished ConditionalResult
 * (samplesUsed == 0) when the backend accepts the graph; nullopt when
 * routing is disabled or the graph is refused (continuous leaves,
 * opaque samplers, joint support beyond options.exactMaxStates), in
 * which case the caller runs its sequential test as before. The exact
 * decision has no indifference band and no error probability: it is
 * the statement the SPRT approximates.
 */
inline std::optional<ConditionalResult>
tryExactConditional(const NodePtr<bool>& node, double threshold,
                    const ConditionalOptions& options)
{
    if (options.exactRouting == ExactRouting::Never)
        return std::nullopt;
    UNCERTAIN_REQUIRE(threshold > 0.0 && threshold < 1.0,
                      "conditional threshold must be in (0, 1)");
    try {
        // One builder per thread, reset (capacity kept) per call:
        // conditional evaluation is the hot path and a cold builder
        // spends most of its time growing vectors.
        thread_local exact::ExactBuilder builder;
        builder.reset(exact::EnumerationLimits{options.exactMaxStates});
        const std::size_t root = node->lowerExact(builder);
        const double p = builder.eventProbability(root);
        ++evalStats().conditionals;
        const auto decision =
            p > threshold ? stats::TestDecision::AcceptAlternative
                          : stats::TestDecision::AcceptNull;
        return ConditionalResult{decision, p, 0};
    } catch (const exact::Unsupported&) {
        return std::nullopt;
    }
}

} // namespace detail
} // namespace core

/**
 * A random variable of type T, represented as a node in a lazily
 * sampled Bayesian network. Copying is cheap (shared graph). See the
 * file comment for the evaluation model.
 */
template <typename T>
class Uncertain
{
  public:
    using ValueType = T;

    /**
     * Lift a plain value to a point-mass distribution. Implicit on
     * purpose: it is what lets `speed > 4.0` and `distance / dt`
     * type-check, the coercion described in section 3.3.
     */
    Uncertain(T value)
        : node_(std::make_shared<core::PointMassNode<T>>(
              std::move(value)))
    {}

    /** Wrap an existing graph node. */
    explicit Uncertain(core::NodePtr<T> node) : node_(std::move(node))
    {
        UNCERTAIN_REQUIRE(node_ != nullptr,
                          "Uncertain requires a non-null node");
    }

    /**
     * Expert-developer entry point: define a distribution by its
     * sampling function (section 4.1). The callable must return an
     * independent draw on each invocation.
     */
    static Uncertain
    fromSampler(std::function<T(Rng&)> sampler,
                std::string label = "sampler")
    {
        return Uncertain(std::make_shared<core::LeafNode<T>>(
            std::move(sampler), std::move(label)));
    }

    /**
     * fromSampler with an additional bulk sampling function for the
     * columnar batch engine: bulk(rng, out, n) must fill out[0..n)
     * with independent draws from the same law as the scalar sampler
     * (it need not consume the stream identically — see
     * random::Distribution::sampleMany).
     */
    static Uncertain
    fromSampler(std::function<T(Rng&)> sampler,
                typename core::LeafNode<T>::BulkSampler bulk,
                std::string label = "sampler")
    {
        return Uncertain(std::make_shared<core::LeafNode<T>>(
            std::move(sampler), std::move(label), std::move(bulk)));
    }

    /** The underlying Bayesian-network node. */
    const core::NodePtr<T>& node() const { return node_; }

    /** Number of nodes in this variable's network. */
    std::size_t graphSize() const { return node_->graphSize(); }

    /** Draw one sample (a full ancestral pass) using @p rng. */
    T
    sample(Rng& rng) const
    {
        core::SampleContext ctx(rng);
        ++core::evalStats().rootSamples;
        return node_->sample(ctx);
    }

    /** Draw one sample using the thread's global generator. */
    T sample() const { return sample(globalRng()); }

    /** Draw @p n samples using @p rng. */
    std::vector<T>
    takeSamples(std::size_t n, Rng& rng) const
    {
        std::vector<T> out;
        out.reserve(n);
        core::SampleContext ctx(rng);
        for (std::size_t i = 0; i < n; ++i) {
            if (i > 0)
                ctx.newEpoch();
            out.push_back(node_->sample(ctx));
            ++core::evalStats().rootSamples;
        }
        return out;
    }

    /** Draw @p n samples using the thread's global generator. */
    std::vector<T>
    takeSamples(std::size_t n) const
    {
        return takeSamples(n, globalRng());
    }

    /**
     * Draw @p n samples with the parallel engine: column blocks of
     * the batch are sampled concurrently on @p sampler's pool. Output
     * is bit-identical for any thread count (see core/parallel.hpp).
     */
    std::vector<T>
    takeSamples(std::size_t n, Rng& rng,
                core::ParallelSampler& sampler) const
    {
        return sampler.takeSamples(node_, n, rng);
    }

    /** Draw @p n samples with the serial columnar batch engine. */
    std::vector<T>
    takeSamples(std::size_t n, Rng& rng,
                core::BatchSampler& sampler) const
    {
        return sampler.takeSamples(node_, n, rng);
    }

    /**
     * Apply an arbitrary unary function, producing a new variable
     * whose network has this one as its operand.
     */
    template <typename F>
    auto
    map(F f, std::string label = "map") const
        -> Uncertain<std::decay_t<std::invoke_result_t<F, T>>>
    {
        using R = std::decay_t<std::invoke_result_t<F, T>>;
        return Uncertain<R>(
            std::make_shared<core::UnaryNode<R, T, F>>(
                node_, std::move(f), std::move(label)));
    }

    // ------------------------------------------------------------------
    // Evaluation operator E (Table 1): projects back to the base type,
    // preserving its ordering properties (section 3.4).
    // ------------------------------------------------------------------

    /** Mean of @p n samples. */
    T
    expectedValue(std::size_t n, Rng& rng) const
        requires core::Accumulable<T> && (!std::same_as<T, bool>)
    {
        UNCERTAIN_REQUIRE(n >= 1, "expectedValue requires n >= 1");
        ++core::evalStats().expectations;
        core::SampleContext ctx(rng);
        T total = node_->sample(ctx);
        ++core::evalStats().rootSamples;
        for (std::size_t i = 1; i < n; ++i) {
            ctx.newEpoch();
            total = total + node_->sample(ctx);
            ++core::evalStats().rootSamples;
        }
        return total / static_cast<double>(n);
    }

    /** Mean of @p n samples using the global generator. */
    T
    expectedValue(std::size_t n = 1000) const
        requires core::Accumulable<T> && (!std::same_as<T, bool>)
    {
        return expectedValue(n, globalRng());
    }

    /** Mean of @p n samples drawn on the parallel engine. */
    T
    expectedValue(std::size_t n, Rng& rng,
                  core::ParallelSampler& sampler) const
        requires core::Accumulable<T> && (!std::same_as<T, bool>)
    {
        return sampler.expectedValue(node_, n, rng);
    }

    /** Mean of @p n samples drawn on the batch engine. */
    T
    expectedValue(std::size_t n, Rng& rng,
                  core::BatchSampler& sampler) const
        requires core::Accumulable<T> && (!std::same_as<T, bool>)
    {
        return sampler.expectedValue(node_, n, rng);
    }

    /** Paper-style shorthand for expectedValue(). */
    T
    E(std::size_t n = 1000) const
        requires core::Accumulable<T> && (!std::same_as<T, bool>)
    {
        return expectedValue(n);
    }

    /**
     * Adaptive expected value: sample until the confidence interval
     * of the mean converges (the paper's anticipated improvement on
     * fixed-size E; section 4.3). Only for scalar types.
     */
    stats::AdaptiveMeanResult
    expectedValueAdaptive(const stats::AdaptiveMeanOptions& options,
                          Rng& rng) const
        requires std::convertible_to<T, double>
                     && (!std::same_as<T, bool>)
    {
        ++core::evalStats().expectations;
        core::SampleContext ctx(rng);
        bool first = true;
        return stats::adaptiveMean(
            [&]() {
                if (!first)
                    ctx.newEpoch();
                first = false;
                ++core::evalStats().rootSamples;
                return static_cast<double>(node_->sample(ctx));
            },
            options);
    }

    /** Adaptive expected value with the global generator. */
    stats::AdaptiveMeanResult
    expectedValueAdaptive(
        const stats::AdaptiveMeanOptions& options = {}) const
        requires std::convertible_to<T, double>
                     && (!std::same_as<T, bool>)
    {
        return expectedValueAdaptive(options, globalRng());
    }

    // ------------------------------------------------------------------
    // Conditional operators (Uncertain<bool> only).
    // ------------------------------------------------------------------

    /**
     * Full ternary evaluation of "Pr[this] > threshold" under the
     * configured sequential test; exposes decision, estimate, and
     * sampling cost.
     */
    core::ConditionalResult
    evaluate(double threshold, const core::ConditionalOptions& options,
             Rng& rng) const
        requires std::same_as<T, bool>
    {
        if (auto closed = core::detail::tryExactConditional(
                node_, threshold, options))
            return *closed;
        core::SampleContext ctx(rng);
        bool first = true;
        return core::evaluateCondition(
            [&]() {
                if (!first)
                    ctx.newEpoch();
                first = false;
                return node_->sample(ctx);
            },
            threshold, options);
    }

    /**
     * Explicit conditional operator (Table 1): is there significant
     * evidence that Pr[this] > threshold? Inconclusive evaluations
     * return false, which is what makes if/else-if chains fall
     * through to their default under the ternary logic of
     * section 3.4.
     */
    bool
    pr(double threshold = 0.5,
       const core::ConditionalOptions& options = {}) const
        requires std::same_as<T, bool>
    {
        return pr(threshold, options, globalRng());
    }

    /** pr() with an explicit generator. */
    bool
    pr(double threshold, const core::ConditionalOptions& options,
       Rng& rng) const
        requires std::same_as<T, bool>
    {
        return evaluate(threshold, options, rng).toBool();
    }

    /**
     * Conditional evaluation with chunk-parallel evidence draws: the
     * sequential test consults its boundaries between chunks, so the
     * sample-size behavior stays within one chunk of the serial test.
     */
    core::ConditionalResult
    evaluate(double threshold, const core::ConditionalOptions& options,
             Rng& rng, core::ParallelSampler& sampler) const
        requires std::same_as<T, bool>
    {
        if (auto closed = core::detail::tryExactConditional(
                node_, threshold, options))
            return *closed;
        return sampler.evaluateCondition(node_, threshold, options,
                                         rng);
    }

    /** pr() with chunk-parallel evidence draws. */
    bool
    pr(double threshold, const core::ConditionalOptions& options,
       Rng& rng, core::ParallelSampler& sampler) const
        requires std::same_as<T, bool>
    {
        return evaluate(threshold, options, rng, sampler).toBool();
    }

    /**
     * Conditional evaluation with batched evidence columns on the
     * serial columnar engine (see core/batch.hpp).
     */
    core::ConditionalResult
    evaluate(double threshold, const core::ConditionalOptions& options,
             Rng& rng, core::BatchSampler& sampler) const
        requires std::same_as<T, bool>
    {
        if (auto closed = core::detail::tryExactConditional(
                node_, threshold, options))
            return *closed;
        return sampler.evaluateCondition(node_, threshold, options,
                                         rng);
    }

    /** pr() with batched evidence columns. */
    bool
    pr(double threshold, const core::ConditionalOptions& options,
       Rng& rng, core::BatchSampler& sampler) const
        requires std::same_as<T, bool>
    {
        return evaluate(threshold, options, rng, sampler).toBool();
    }

    /**
     * Implicit conditional operator: "more likely than not", i.e.
     * Pr[this] > 0.5. `explicit` still permits direct use in if/
     * while/&&/|| via contextual conversion, matching the paper's
     * `if (Speed > 4)`.
     */
    explicit
    operator bool() const
        requires std::same_as<T, bool>
    {
        return pr(0.5);
    }

    /**
     * Point estimate of Pr[this] from @p n samples (no hypothesis
     * test; mostly for inspection and harness output).
     */
    double
    probability(std::size_t n, Rng& rng) const
        requires std::same_as<T, bool>
    {
        UNCERTAIN_REQUIRE(n >= 1, "probability requires n >= 1");
        core::SampleContext ctx(rng);
        std::size_t hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (i > 0)
                ctx.newEpoch();
            hits += node_->sample(ctx) ? 1 : 0;
            ++core::evalStats().rootSamples;
        }
        return static_cast<double>(hits) / static_cast<double>(n);
    }

    /** probability() with the global generator. */
    double
    probability(std::size_t n = 1000) const
        requires std::same_as<T, bool>
    {
        return probability(n, globalRng());
    }

    /** Point estimate of Pr[this] from @p n parallel samples. */
    double
    probability(std::size_t n, Rng& rng,
                core::ParallelSampler& sampler) const
        requires std::same_as<T, bool>
    {
        return sampler.probability(node_, n, rng);
    }

    /** Point estimate of Pr[this] from @p n batched samples. */
    double
    probability(std::size_t n, Rng& rng,
                core::BatchSampler& sampler) const
        requires std::same_as<T, bool>
    {
        return sampler.probability(node_, n, rng);
    }

  private:
    core::NodePtr<T> node_;
};

namespace core {

/**
 * Wrap a src/random distribution object as an Uncertain<double> leaf.
 * The distribution is shared, not copied. The leaf carries both the
 * scalar sampler and the distribution's bulk sampleMany, so the batch
 * engine fills its column with the amortized form; discrete
 * distributions (Distribution::finiteSupport) additionally carry
 * their support table, admitting the graph into the exact
 * enumeration backend.
 */
inline Uncertain<double>
fromDistribution(random::DistributionPtr dist)
{
    UNCERTAIN_REQUIRE(dist != nullptr,
                      "fromDistribution requires a distribution");
    std::string label = dist->name();
    std::shared_ptr<const exact::FiniteSupport<double>> support;
    {
        std::vector<double> values;
        std::vector<double> probabilities;
        if (dist->finiteSupport(values, probabilities)) {
            support = std::make_shared<exact::FiniteSupport<double>>(
                exact::FiniteSupport<double>{std::move(values),
                                             std::move(probabilities)});
        }
    }
    auto scalar = [dist](Rng& rng) { return dist->sample(rng); };
    auto bulk = [dist = std::move(dist)](Rng& rng, double* out,
                                         std::size_t n) {
        dist->sampleMany(rng, out, n);
    };
    return Uncertain<double>(std::make_shared<LeafNode<double>>(
        std::move(scalar), std::move(label), std::move(bulk),
        std::move(support)));
}

/**
 * Leaf with an explicit finite support: one draw picks values[i] with
 * probability weights[i] / sum(weights). Zero-weight values are
 * dropped. This is the first-class citizen of the exact enumeration
 * backend (src/exact): graphs built from such leaves answer pr(),
 * pmf, and expectation queries in closed form, and conditionals on
 * them short-circuit the SPRT loop entirely.
 */
template <typename T>
Uncertain<T>
fromFiniteSupport(std::vector<T> values, std::vector<double> weights,
                  std::string label = "finite")
{
    UNCERTAIN_REQUIRE(!values.empty()
                          && values.size() == weights.size(),
                      "fromFiniteSupport requires parallel non-empty "
                      "value/weight arrays");
    double total = 0.0;
    for (double w : weights) {
        UNCERTAIN_REQUIRE(std::isfinite(w) && w >= 0.0,
                          "fromFiniteSupport weights must be finite "
                          "and non-negative");
        total += w;
    }
    UNCERTAIN_REQUIRE(total > 0.0,
                      "fromFiniteSupport requires positive total "
                      "weight");

    auto support = std::make_shared<exact::FiniteSupport<T>>();
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (weights[i] > 0.0) {
            support->values.push_back(values[i]);
            support->probabilities.push_back(weights[i] / total);
        }
    }

    // Inverse-CDF sampling over the cumulative table. The last entry
    // is pinned to 1 so a uniform draw of ~1.0 cannot fall off the
    // end through rounding.
    auto cumulative = std::make_shared<std::vector<double>>();
    cumulative->reserve(support->probabilities.size());
    double acc = 0.0;
    for (double p : support->probabilities)
        cumulative->push_back(acc += p);
    cumulative->back() = 1.0;
    auto supportValues =
        std::make_shared<const std::vector<T>>(support->values);

    auto pick = [supportValues, cumulative](Rng& rng) -> T {
        const double u = rng.nextDouble();
        const auto it = std::upper_bound(cumulative->begin(),
                                         cumulative->end(), u);
        const auto i = std::min<std::size_t>(
            static_cast<std::size_t>(it - cumulative->begin()),
            supportValues->size() - 1);
        return (*supportValues)[i];
    };
    typename LeafNode<T>::BulkSampler bulk =
        [supportValues, cumulative](Rng& rng, batch::Store<T>* out,
                                    std::size_t n) {
            for (std::size_t j = 0; j < n; ++j) {
                const double u = rng.nextDouble();
                const auto it = std::upper_bound(cumulative->begin(),
                                                 cumulative->end(), u);
                const auto i = std::min<std::size_t>(
                    static_cast<std::size_t>(it
                                             - cumulative->begin()),
                    supportValues->size() - 1);
                out[j] = static_cast<batch::Store<T>>(
                    (*supportValues)[i]);
            }
        };
    return Uncertain<T>(std::make_shared<LeafNode<T>>(
        std::move(pick), std::move(label), std::move(bulk),
        std::move(support)));
}

/**
 * A Bernoulli(p) event as an exact-capable Uncertain<bool>:
 * `bernoulliEvent(0.9).pr(0.5)` answers without drawing a sample.
 */
inline Uncertain<bool>
bernoulliEvent(double p, std::string label = "")
{
    UNCERTAIN_REQUIRE(p >= 0.0 && p <= 1.0,
                      "bernoulliEvent requires p in [0, 1]");
    if (label.empty())
        label = "Bernoulli(" + std::to_string(p) + ")";
    return fromFiniteSupport<bool>({false, true}, {1.0 - p, p},
                                   std::move(label));
}

/**
 * Leaf over a fixed sample pool: one draw = one uniform pick from the
 * pool. This is the representation of resampled SIR posteriors
 * (inference/reweight.hpp) and of Parakeet's posterior-predictive
 * pool (section 5.3) — a first-class batch citizen: the leaf carries
 * a bulk sampler that fills whole columns with uniform picks, so
 * downstream graphs over the posterior compile to columnar plans
 * instead of degrading to per-element scalar calls. The pool is
 * shared, not copied.
 */
template <typename T>
Uncertain<T>
fromPool(std::shared_ptr<const std::vector<T>> pool, std::string label)
{
    UNCERTAIN_REQUIRE(pool != nullptr && !pool->empty(),
                      "fromPool requires a non-empty pool");
    auto scalar = [pool](Rng& rng) {
        return (*pool)[static_cast<std::size_t>(
            rng.nextBelow(pool->size()))];
    };
    auto bulk = [pool](Rng& rng, batch::Store<T>* out, std::size_t n) {
        const std::uint64_t size = pool->size();
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = static_cast<batch::Store<T>>(
                (*pool)[static_cast<std::size_t>(
                    rng.nextBelow(size))]);
        }
    };
    return Uncertain<T>::fromSampler(std::move(scalar),
                                     std::move(bulk),
                                     std::move(label));
}

/**
 * Expert override for dependent leaves (section 3.3): supply a joint
 * sampling function and receive the two marginals as Uncertain
 * values that share one underlying draw per sampling pass. Any
 * computation combining them sees the joint distribution, not the
 * product of marginals.
 */
template <typename A, typename B>
std::pair<Uncertain<A>, Uncertain<B>>
makeCorrelated(std::function<std::pair<A, B>(Rng&)> jointSampler,
               std::string label = "joint")
{
    auto joint = std::make_shared<core::LeafNode<std::pair<A, B>>>(
        std::move(jointSampler), std::move(label));

    auto takeFirst = [](const std::pair<A, B>& p) { return p.first; };
    auto takeSecond = [](const std::pair<A, B>& p) { return p.second; };

    Uncertain<A> first(
        std::make_shared<
            core::UnaryNode<A, std::pair<A, B>, decltype(takeFirst)>>(
            joint, takeFirst, "first"));
    Uncertain<B> second(
        std::make_shared<
            core::UnaryNode<B, std::pair<A, B>, decltype(takeSecond)>>(
            joint, takeSecond, "second"));
    return {std::move(first), std::move(second)};
}

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_UNCERTAIN_HPP
