/**
 * @file
 * Parallel columnar sampling engine.
 *
 * The graph is compiled once into the flat plan of
 * core/batch_plan.hpp; a batch of N draws is partitioned into column
 * blocks of chunkSize samples, and the thread pool executes whole
 * blocks — each worker fills its own private workspace of contiguous
 * columns, paying per-node dispatch once per block instead of once
 * per sample. Blocks are independent (leaf streams derive from the
 * caller's Rng snapshot and the block's start index), so the batch is
 * embarrassingly parallel.
 *
 * Determinism: the block partition is fixed by chunkSize alone, and
 * the block starting at absolute index s always draws from
 * `base.split(s)` (one child stream per leaf under it). Output is
 * therefore bit-identical for any thread count — and bit-identical to
 * the serial BatchSampler with blockSize == chunkSize. Changing
 * chunkSize changes the stream partition (and so the samples), unlike
 * the per-sample engine this replaces.
 */

#ifndef UNCERTAIN_CORE_PARALLEL_HPP
#define UNCERTAIN_CORE_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/conditional.hpp"
#include "core/node.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace core {

/**
 * Minimal fixed-size thread pool. Workers are started once and reused
 * across batches; parallelFor blocks the caller until every chunk has
 * run. With fewer than two workers the loop runs inline on the
 * calling thread (no pool threads are ever started), which keeps
 * single-threaded users allocation- and synchronization-free.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of threads chunks run on (>= 1; 1 means inline). */
    unsigned threadCount() const { return threads_; }

    /**
     * Run body(begin, end) over consecutive chunks of [0, n), each at
     * most @p chunk long, and wait for completion. The first
     * exception thrown by any chunk is rethrown on the caller.
     */
    void parallelFor(std::size_t n, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>&
                         body);

  private:
    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::function<void()>> queue_;
    std::size_t pending_ = 0; //!< queued + running tasks
    std::exception_ptr firstError_;
    bool stopping_ = false;
};

/** Tuning for the parallel sampling engine. */
struct ParallelOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = inline. */
    unsigned threads = 0;
    /**
     * Samples per column block (one work item). Large enough to
     * amortize dispatch, small enough to load-balance a mixed-cost
     * batch. Part of the determinism contract: the block partition —
     * and therefore the stream family — is a function of this value.
     */
    std::size_t chunkSize = 1024;
    /**
     * Optimizer pass toggles for plan compilation (see PlanOptions in
     * core/batch_plan.hpp). Never changes the samples, so the
     * bit-identity guarantees above hold for any setting.
     */
    PlanOptions optimizer{};
};

/**
 * Parallel batch sampling engine: compiles the graph into a columnar
 * plan and draws blocks of samples concurrently, one workspace per
 * worker. One engine may be reused across graphs and calls; it is not
 * itself thread-safe (use one engine per calling thread).
 */
class ParallelSampler
{
  public:
    explicit ParallelSampler(ParallelOptions options = {},
                             std::shared_ptr<PlanCache> cache = nullptr)
        : pool_(options.threads),
          chunkSize_(options.chunkSize > 0 ? options.chunkSize : 1),
          optimizer_(options.optimizer),
          cache_(cache ? std::move(cache)
                       : std::make_shared<PlanCache>())
    {}

    explicit ParallelSampler(unsigned threads)
        : ParallelSampler(ParallelOptions{threads, 1024})
    {}

    unsigned threads() const { return pool_.threadCount(); }
    std::size_t chunkSize() const { return chunkSize_; }

    /** The optimizer configuration plans are compiled with. */
    const PlanOptions& optimizer() const { return optimizer_; }

    /** The (shareable, thread-safe) plan cache backing this engine. */
    const std::shared_ptr<PlanCache>& planCache() const { return cache_; }

    /**
     * Draw @p n root samples of @p node into a vector. The block
     * starting at index s uses stream family base.split(s); @p rng is
     * advanced once at the end so the next batch sees a fresh stream
     * family. Bit-identical output for any thread count, and equal to
     * BatchSampler with blockSize == chunkSize.
     */
    template <typename T>
    std::vector<T>
    takeSamples(const NodePtr<T>& node, std::size_t n, Rng& rng)
    {
        UNCERTAIN_REQUIRE(node != nullptr,
                          "takeSamples requires a node");
        // A plain array: vector<bool>'s packed bits cannot be written
        // concurrently.
        std::unique_ptr<T[]> buffer(new T[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        rng.advance();
        return std::vector<T>(buffer.get(), buffer.get() + n);
    }

    /**
     * Mean of @p n samples. The reduction runs serially in index
     * order after the parallel draw, so the result is bit-identical
     * for any thread count.
     */
    template <typename T>
    T
    expectedValue(const NodePtr<T>& node, std::size_t n, Rng& rng)
    {
        UNCERTAIN_REQUIRE(n >= 1, "expectedValue requires n >= 1");
        std::unique_ptr<T[]> buffer(new T[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        ++evalStats().expectations;
        rng.advance();
        T total = buffer[0];
        for (std::size_t i = 1; i < n; ++i)
            total = total + buffer[i];
        return total / static_cast<double>(n);
    }

    /** Point estimate of Pr[node] from @p n parallel samples. */
    double
    probability(const NodePtr<bool>& node, std::size_t n, Rng& rng)
    {
        UNCERTAIN_REQUIRE(n >= 1, "probability requires n >= 1");
        std::unique_ptr<bool[]> buffer(new bool[n]());
        sampleInto(node, n, rng, buffer.get());
        evalStats().rootSamples += n;
        rng.advance();
        std::size_t hits = 0;
        for (std::size_t i = 0; i < n; ++i)
            hits += buffer[i] ? 1 : 0;
        return static_cast<double>(hits) / static_cast<double>(n);
    }

    /**
     * Conditional evaluation with chunk-parallel draws: each chunk of
     * Bernoulli evidence is sampled concurrently, then the sequential
     * test consumes it in index order and Wald's boundaries are
     * consulted between chunks (core/conditional.hpp). The decision
     * matches a serial test fed the same observation sequence.
     */
    ConditionalResult
    evaluateCondition(const NodePtr<bool>& node, double threshold,
                      const ConditionalOptions& options, Rng& rng)
    {
        UNCERTAIN_REQUIRE(node != nullptr,
                          "evaluateCondition requires a node");
        // Chunks sized for the pool: a serial-width SPRT batch (k=10)
        // would leave workers idle.
        const std::size_t chunk = std::max<std::size_t>(
            options.sprt.batchSize,
            static_cast<std::size_t>(pool_.threadCount()) * 64);
        auto result = evaluateConditionChunked(
            [&](std::size_t offset, std::size_t count,
                std::uint8_t* out) {
                sampleIndexed(node, rng, offset, count, out);
            },
            threshold, options, chunk);
        rng.advance();
        return result;
    }

  private:
    /**
     * Fill out[0..n) with root draws via the columnar plan: block
     * [begin, end) uses stream family base.split(begin). Does not
     * advance @p base and does not touch evalStats (workers run on
     * pool threads whose counters are not the caller's).
     *
     * With fewer than two workers the block loop runs inline on the
     * calling thread against the plan cache's reusable workspace —
     * no pool dispatch, no per-block workspace allocation — which is
     * exactly the serial BatchSampler execution.
     */
    template <typename T>
    void
    sampleInto(const NodePtr<T>& node, std::size_t n, const Rng& base,
               T* out)
    {
        auto planPtr = cache_->planFor(node, optimizer_);
        const BatchPlan& plan = *planPtr;
        const std::size_t rootCol = plan.rootColumn();
        if (pool_.threadCount() < 2) {
            auto& workspace = workspaces_.acquire(planPtr);
            for (std::size_t start = 0; start < n;
                 start += chunkSize_) {
                const std::size_t len =
                    std::min(chunkSize_, n - start);
                plan.runBlock(workspace, base, start, len);
                const auto* col =
                    workspace.template column<T>(rootCol).data();
                std::copy(col, col + len, out + start);
            }
            return;
        }
        pool_.parallelFor(
            n, chunkSize_,
            [&](std::size_t begin, std::size_t end) {
                BatchWorkspace ws = plan.makeWorkspace();
                plan.runBlock(ws, base, begin, end - begin);
                const auto* col =
                    ws.template column<T>(rootCol).data();
                std::copy(col, col + (end - begin), out + begin);
            });
    }

    /** sampleInto for a window [offset, offset+count) of the index
     *  space, writing Bernoulli observations as bytes; blocks are
     *  keyed by their absolute start offset. */
    void
    sampleIndexed(const NodePtr<bool>& node, const Rng& base,
                  std::size_t offset, std::size_t count,
                  std::uint8_t* out)
    {
        auto planPtr = cache_->planFor(node, optimizer_);
        const BatchPlan& plan = *planPtr;
        const std::size_t rootCol = plan.rootColumn();
        if (pool_.threadCount() < 2) {
            auto& workspace = workspaces_.acquire(planPtr);
            for (std::size_t start = 0; start < count;
                 start += chunkSize_) {
                const std::size_t len =
                    std::min(chunkSize_, count - start);
                plan.runBlock(workspace, base, offset + start, len);
                const auto* col =
                    workspace.column<bool>(rootCol).data();
                std::copy(col, col + len, out + start);
            }
            return;
        }
        pool_.parallelFor(
            count, chunkSize_,
            [&](std::size_t begin, std::size_t end) {
                BatchWorkspace ws = plan.makeWorkspace();
                plan.runBlock(ws, base, offset + begin, end - begin);
                const auto* col = ws.column<bool>(rootCol).data();
                std::copy(col, col + (end - begin), out + begin);
            });
    }

    ThreadPool pool_;
    std::size_t chunkSize_;
    PlanOptions optimizer_;
    std::shared_ptr<PlanCache> cache_;
    WorkspacePool workspaces_; //!< inline (<2 thread) path only
};

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_PARALLEL_HPP
