/**
 * @file
 * Declarations of the SIMD hot-path kernels and the runtime
 * CPU-feature dispatch behind them.
 *
 * This header (and its .cpp) is the bottom of the SIMD layer: it has
 * NO dependencies on the rest of the library — support/ (Rng) and
 * random/ (the ziggurat) both call down into it, and core/simd.hpp
 * builds the plan-facing trait layer on top of it. It is compiled
 * into its own CMake target (uncertain_simd) with -ffp-contract=off
 * so that no kernel, scalar-emulation or vector, ever fuses a
 * mul+add into an FMA: that is what makes the vector paths
 * bit-identical to the scalar interpreter (see docs/API.md
 * "Execution backends" for the fp contract).
 *
 * Every kernel takes an explicit Isa and internally clamps it to
 * what the binary was compiled with AND what the running CPU
 * supports, falling back through SSE2 to the portable scalar
 * emulation. Passing a too-new Isa is therefore always safe; tests
 * use explicit Isa values to check lane-width parity, production
 * callers pass activeIsa().
 *
 * Element order is never changed and floating point is never
 * reassociated: a binary kernel computes out[i] = a[i] op b[i] with
 * one IEEE operation per element, exactly like the scalar loop, so
 * results are bit-identical across Isa values — including NaN
 * propagation and signed zeros (Min/Max are implemented as
 * compare+blend reproducing (y < x) ? y : x, not as vminpd, whose
 * NaN convention differs).
 */

#ifndef UNCERTAIN_CORE_SIMD_KERNELS_HPP
#define UNCERTAIN_CORE_SIMD_KERNELS_HPP

#include <cstddef>
#include <cstdint>

namespace uncertain {
namespace simd {

/** Instruction sets the dispatcher knows about, weakest first. */
enum class Isa : std::uint8_t
{
    Scalar = 0, //!< portable scalar emulation (always available)
    Sse2 = 1,   //!< 2 x double / 2 x u64 packs (x86-64 baseline)
    Avx2 = 2,   //!< 4 x double / 4 x u64 packs + gathers
    Neon = 3,   //!< 2 x double packs (aarch64)
};

/** Strongest Isa this binary carries code for (compile-time). */
Isa compiledIsa();

/** Strongest Isa the running CPU supports (runtime, cached). */
Isa detectedIsa();

/**
 * The Isa kernels actually execute: min(compiled, detected), or
 * Scalar while setForceScalar(true) is in effect. This is what
 * PlanOptions::backend == Auto resolves against.
 */
Isa activeIsa();

/**
 * Process-wide kill switch: force activeIsa() to Scalar. Used by the
 * --backend scalar bench axis and the equivalence tests so that the
 * RNG-fill and ziggurat layers (which are below the plan and have no
 * per-plan toggle) drop to their scalar paths together with the
 * strips. Not a per-call override: kernels invoked with an explicit
 * non-scalar Isa still vectorize.
 */
void setForceScalar(bool force);

/** Current state of the force-scalar switch. */
bool forceScalar();

/** Doubles per vector register on @p isa (1 for Scalar). */
std::size_t laneWidth(Isa isa);

/** Human-readable name ("scalar", "sse2", "avx2", "neon"). */
const char* isaName(Isa isa);

// ---- fused elementwise strip kernels --------------------------------

/** Binary double -> double micro-ops with a vector form. */
enum class BinF64 : std::uint8_t { Add, Sub, Mul, Div, Min, Max };

/** Comparison predicates (shared by the f64 and i32 kernels). */
enum class Cmp : std::uint8_t { Lt, Gt, Le, Ge, Eq, Ne };

/** Binary int32 -> int32 micro-ops with a vector form. */
enum class BinI32 : std::uint8_t { Add, Sub, Mul, Min, Max };

/** Binary int64 -> int64 micro-ops with a vector form. */
enum class BinI64 : std::uint8_t { Add, Sub };

/** Logical micro-ops over 0/1 bytes (Store<bool>). */
enum class BoolOp : std::uint8_t { And, Or };

void binaryF64(Isa isa, BinF64 op, const double* a, const double* b,
               double* out, std::size_t n);

/**
 * Broadcast-constant forms of binaryF64: one operand is the same
 * value for every element, so the kernel keeps it in a register
 * instead of streaming a splatted column from L1. Bit-identical to
 * binaryF64 over a column filled with that value (same per-element
 * arithmetic, one fewer load stream). The fusion pass emits these
 * when an operand is a hoisted point-mass column.
 */
void binaryF64ConstB(Isa isa, BinF64 op, const double* a, double b,
                     double* out, std::size_t n);
void binaryF64ConstA(Isa isa, BinF64 op, double a, const double* b,
                     double* out, std::size_t n);

/** out[i] = (a[i] cmp b[i]) as a 0/1 byte (IEEE ordered compares:
 *  every predicate except Ne is false on NaN operands, Ne true). */
void compareF64(Isa isa, Cmp op, const double* a, const double* b,
                std::uint8_t* out, std::size_t n);

void binaryI32(Isa isa, BinI32 op, const std::int32_t* a,
               const std::int32_t* b, std::int32_t* out, std::size_t n);

void compareI32(Isa isa, Cmp op, const std::int32_t* a,
                const std::int32_t* b, std::uint8_t* out,
                std::size_t n);

void binaryI64(Isa isa, BinI64 op, const std::int64_t* a,
               const std::int64_t* b, std::int64_t* out, std::size_t n);

/** out[i] = a[i] op b[i] over 0/1 bytes. */
void boolBinary(Isa isa, BoolOp op, const std::uint8_t* a,
                const std::uint8_t* b, std::uint8_t* out,
                std::size_t n);

/** out[i] = a[i] == 0 ? 1 : 0 (logical not over 0/1 bytes). */
void boolNot(Isa isa, const std::uint8_t* a, std::uint8_t* out,
             std::size_t n);

/** out[i] = -a[i] (sign-bit flip; bit-exact for NaN and +-0). */
void negF64(Isa isa, const double* a, double* out, std::size_t n);

/** out[i] = c[i] ? x[i] : y[i] with c a 0/1 byte column. */
void selectF64(Isa isa, const std::uint8_t* c, const double* x,
               const double* y, double* out, std::size_t n);

// ---- bulk RNG fills --------------------------------------------------

/**
 * Write the next @p n outputs of the xoshiro256** stream whose
 * 256-bit state is @p state (modified in place to the post-fill
 * state), in exactly the order a scalar next() loop would produce
 * them. The vector path runs 4 leapfrogged copies of the engine —
 * lane j holds the state j steps ahead — so one vector scrambler
 * yields 4 consecutive outputs per iteration while every lane
 * retraces the identical serial orbit; output and final state are
 * bit-identical to the scalar loop by construction.
 */
void xoshiroFillU64(Isa isa, std::uint64_t state[4], std::uint64_t* out,
                    std::size_t n);

/**
 * As xoshiroFillU64, but mapping each word to a double exactly as
 * Rng::nextDouble (open == false: (x >> 11) * 2^-53) or
 * Rng::nextDoubleOpen (open == true: ((x >> 11) + 0.5) * 2^-53)
 * would. The vector u64 -> f64 conversion is exact (split into
 * 21-bit and 32-bit halves, each converted via the 2^52 magic-bias
 * trick), so results are bit-identical to the scalar casts.
 */
void xoshiroFillDouble(Isa isa, std::uint64_t state[4], double* out,
                       std::size_t n, bool open);

// ---- ziggurat Gaussian fast-accept pass ------------------------------

/**
 * The common-case layer of the Marsaglia-Tsang ziggurat over @p n
 * pre-drawn 64-bit words: for each word, compute hz (low 32 bits as
 * int32), iz = hz & 127, and on the ~97.7% fast path write
 * out[i] = mu + sigma * (double(hz) * wn[iz]). Indices whose |hz|
 * fails the kn[iz] acceptance test are appended to @p rejects
 * (caller-allocated, capacity >= n) in ascending order; their out
 * slot holds an unspecified value (the vector path stores whole
 * packs) until overwritten — the caller runs the scalar tail/wedge
 * fix-up for them in that order, which reproduces the scalar loop's
 * Rng consumption sequence exactly. Returns the reject count.
 *
 * kn/wn are the 128-entry ziggurat tables (random/gaussian.cpp owns
 * them; this layer just reads). Accepted values are bit-identical
 * to the scalar path: double(hz) and the int32 magnitude test are
 * exact, wn[iz] is fetched (gathered) unmodified, and the
 * mu + sigma * x polynomial is evaluated mul-then-add with no FMA
 * contraction on either path.
 */
std::size_t zigguratAccept(Isa isa, const std::uint64_t* words,
                           std::size_t n, const std::uint32_t* kn,
                           const double* wn, double mu, double sigma,
                           double* out, std::uint32_t* rejects);

} // namespace simd
} // namespace uncertain

#endif // UNCERTAIN_CORE_SIMD_KERNELS_HPP
