/**
 * @file
 * Umbrella header for the Uncertain<T> core: include this to get the
 * type, its operator algebra, conditional evaluation, and DOT export.
 */

#ifndef UNCERTAIN_CORE_CORE_HPP
#define UNCERTAIN_CORE_CORE_HPP

#include "core/batch.hpp"       // IWYU pragma: export
#include "core/conditional.hpp" // IWYU pragma: export
#include "core/dot.hpp"         // IWYU pragma: export
#include "core/functions.hpp"   // IWYU pragma: export
#include "core/inspect.hpp"     // IWYU pragma: export
#include "core/node.hpp"        // IWYU pragma: export
#include "core/operators.hpp"   // IWYU pragma: export
#include "core/parallel.hpp"    // IWYU pragma: export
#include "core/ordering.hpp"    // IWYU pragma: export
#include "core/uncertain.hpp"   // IWYU pragma: export
#include "exact/exact.hpp"      // IWYU pragma: export

#endif // UNCERTAIN_CORE_CORE_HPP
