/**
 * @file
 * Total ordering for uncertain values. Comparing distributions
 * yields evidence, not a strict weak order — so sorting directly on
 * `<` is ill-defined (and its hypothesis tests are not even
 * transitive). The paper's prescription: "for problems that require
 * a total order, such as sorting algorithms, Uncertain<T> provides
 * the expected value operator E ... it preserves the base type's
 * ordering properties" (section 3.4). These helpers implement that
 * recipe: evaluate E once per element, order by it.
 */

#ifndef UNCERTAIN_CORE_ORDERING_HPP
#define UNCERTAIN_CORE_ORDERING_HPP

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "core/uncertain.hpp"
#include "support/rng.hpp"

namespace uncertain {
namespace core {

/**
 * Indices of @p values ordered by ascending expected value
 * (@p samplesPerElement draws each). Stable for ties.
 */
template <typename T>
std::vector<std::size_t>
rankByExpectedValue(const std::vector<Uncertain<T>>& values,
                    std::size_t samplesPerElement, Rng& rng)
{
    std::vector<double> keys;
    keys.reserve(values.size());
    for (const auto& value : values) {
        keys.push_back(static_cast<double>(
            value.expectedValue(samplesPerElement, rng)));
    }
    std::vector<std::size_t> order(values.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&keys](std::size_t a, std::size_t b) {
                         return keys[a] < keys[b];
                     });
    return order;
}

/** rankByExpectedValue() with the thread's global generator. */
template <typename T>
std::vector<std::size_t>
rankByExpectedValue(const std::vector<Uncertain<T>>& values,
                    std::size_t samplesPerElement = 1000)
{
    return rankByExpectedValue(values, samplesPerElement, globalRng());
}

/**
 * Sort @p values in place by ascending expected value.
 */
template <typename T>
void
sortByExpectedValue(std::vector<Uncertain<T>>& values,
                    std::size_t samplesPerElement, Rng& rng)
{
    std::vector<std::size_t> order =
        rankByExpectedValue(values, samplesPerElement, rng);
    std::vector<Uncertain<T>> sorted;
    sorted.reserve(values.size());
    for (std::size_t index : order)
        sorted.push_back(std::move(values[index]));
    values = std::move(sorted);
}

/** sortByExpectedValue() with the thread's global generator. */
template <typename T>
void
sortByExpectedValue(std::vector<Uncertain<T>>& values,
                    std::size_t samplesPerElement = 1000)
{
    sortByExpectedValue(values, samplesPerElement, globalRng());
}

} // namespace core
} // namespace uncertain

#endif // UNCERTAIN_CORE_ORDERING_HPP
