#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regression.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.20]

For every benchmark name present in both files the script compares
throughput (items_per_second when reported, else 1/real_time) and
exits non-zero if the candidate is slower than the baseline by more
than the tolerance fraction on any shared benchmark. CI uses it to
gate the batch-plan optimizer: candidate = optimizer on, baseline =
optimizer off, so a pass that makes plans slower than not optimizing
at all fails the job.

Benchmarks present in only one file are reported but never fail the
comparison (filters and engine axes legitimately differ across runs).

Certification mode: when both files are BENCH_certification.json
documents (top-level "certifications" key, written by
bench_certification), the comparison switches to the certificate
view — tv_upper_bound must not GROW by more than the tolerance
fraction (lower is better: a growing TV bound means a sampler drifted
away from its law), any pass -> fail transition fails outright, and
draw throughput (samples_per_second) is gated like any benchmark.

Backend-gate mode (--backend-gate; --simd is a legacy alias):
baseline and candidate are the same benchmarks run under two
execution backends — e.g. scalar vs simd, or simd vs jit. Benchmarks
matching the --gate regex (default: the depth-64 fused elementwise
chain) must be at least --min-speedup faster under the candidate
backend — each rung of the backend ladder has to EARN its keep on
the strip-dominated workload, not merely avoid regressing. CI gates
scalar -> simd at 1.3x and simd -> jit at 1.25x. All other shared
benchmarks use the normal tolerance check (the faster backend must
never be slower beyond the tolerance: RNG-bound benches legitimately
see ~1x). Certification documents still take the certificate view,
so a conformance regression on any backend fails the job regardless
of speed.
"""

import argparse
import json
import re
import sys


def load_json(path):
    with open(path) as handle:
        return json.load(handle)


def load_certifications(data):
    """Map name -> (tv_upper_bound, passed, samples_per_second)."""
    result = {}
    for cert in data.get("certifications", []):
        result[cert["name"]] = (
            float(cert["tv_upper_bound"]),
            bool(cert["pass"]),
            float(cert.get("samples_per_second", 0.0)),
        )
    return result


def compare_certifications(base, cand, tolerance):
    """Diff two certification maps; return the exit code."""
    shared = sorted(set(base) & set(cand))
    if not shared:
        print("bench_compare: no shared certifications",
              file=sys.stderr)
        return 2
    for name in sorted(set(base) ^ set(cand)):
        side = "baseline" if name in base else "candidate"
        print(f"  ({side} only, ignored) {name}")

    failures = []
    width = max(len(name) for name in shared)
    print(f"{'certification':<{width}}  tv_base     tv_cand     "
          f"ratio  pass")
    for name in shared:
        tv_base, pass_base, rate_base = base[name]
        tv_cand, pass_cand, rate_cand = cand[name]
        ratio = tv_cand / tv_base if tv_base > 0 else float("inf")
        marker = ""
        if pass_base and not pass_cand:
            marker = "  <-- CERTIFICATE LOST"
            failures.append((name, "pass -> fail"))
        elif ratio > 1.0 + tolerance:
            marker = "  <-- TV GREW"
            failures.append((name, f"tv {ratio:.2f}x of baseline"))
        elif rate_base > 0 and rate_cand < rate_base * (1 - tolerance):
            marker = "  <-- THROUGHPUT REGRESSION"
            failures.append(
                (name, f"rate {rate_cand / rate_base:.2f}x"))
        print(f"{name:<{width}}  {tv_base:10.4g}  {tv_cand:10.4g}  "
              f"{ratio:5.2f}x  {'y' if pass_cand else 'N'}{marker}")

    if failures:
        print(f"\nbench_compare: {len(failures)} certification(s) "
              f"regressed:", file=sys.stderr)
        for name, reason in failures:
            print(f"  {name}: {reason}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: OK ({len(shared)} shared certifications "
          f"within {tolerance:.0%})")
    return 0


def load_benchmarks(path):
    """Map benchmark name -> throughput (higher is better)."""
    data = load_json(path)
    result = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions) so
        # a repetition run compares raw iterations consistently.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        if "items_per_second" in bench:
            result[name] = float(bench["items_per_second"])
        elif float(bench.get("real_time", 0.0)) > 0.0:
            result[name] = 1.0 / float(bench["real_time"])
    return result


def main():
    parser = argparse.ArgumentParser(
        description="Fail when CANDIDATE regresses vs BASELINE.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional slowdown before failing "
             "(default 0.20 = 20%%)")
    parser.add_argument(
        "--backend-gate", action="store_true",
        help="backend gate mode: baseline and candidate are the same "
             "benchmarks under two execution backends (scalar vs "
             "simd, simd vs jit, ...); benchmarks matching --gate "
             "must speed up by --min-speedup")
    parser.add_argument(
        "--simd", action="store_true",
        help="legacy alias for --backend-gate (kept for old CI "
             "configs and scripts)")
    parser.add_argument(
        "--min-speedup", type=float, default=1.3,
        help="required candidate/baseline throughput ratio on "
             "--gate benchmarks in --backend-gate mode (default 1.3)")
    parser.add_argument(
        "--gate", default=r"BM_ElementwiseChain/64$",
        help="regex selecting the benchmarks that must meet "
             "--min-speedup in --backend-gate mode (default: the "
             "depth-64 fused elementwise chain)")
    args = parser.parse_args()
    args.backend_gate = args.backend_gate or args.simd

    base_doc = load_json(args.baseline)
    cand_doc = load_json(args.candidate)
    if "certifications" in base_doc and "certifications" in cand_doc:
        return compare_certifications(load_certifications(base_doc),
                                      load_certifications(cand_doc),
                                      args.tolerance)

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    shared = sorted(set(base) & set(cand))
    if not shared:
        print("bench_compare: no shared benchmarks between "
              f"{args.baseline} and {args.candidate}", file=sys.stderr)
        return 2

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    for name in only_base:
        print(f"  (baseline only, ignored) {name}")
    for name in only_cand:
        print(f"  (candidate only, ignored) {name}")

    gate_re = re.compile(args.gate) if args.backend_gate else None
    gated = [n for n in shared if gate_re and gate_re.search(n)]
    if args.backend_gate and not gated:
        print(f"bench_compare: backend gate '{args.gate}' matched no "
              f"shared benchmark", file=sys.stderr)
        return 2

    failures = []
    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  baseline      candidate     ratio")
    for name in shared:
        ratio = cand[name] / base[name] if base[name] > 0 else 0.0
        marker = ""
        if name in gated:
            if ratio < args.min_speedup:
                marker = "  <-- BACKEND GATE MISSED"
                failures.append((name, ratio))
            else:
                marker = f"  (gate: >= {args.min_speedup:.2f}x ok)"
        elif ratio < 1.0 - args.tolerance:
            marker = "  <-- REGRESSION"
            failures.append((name, ratio))
        print(f"{name:<{width}}  {base[name]:12.4g}  "
              f"{cand[name]:12.4g}  {ratio:5.2f}x{marker}")

    if failures:
        print(f"\nbench_compare: {len(failures)} benchmark(s) "
              f"regressed beyond {args.tolerance:.0%}"
              + (f" (gate {args.min_speedup:.2f}x)"
                 if args.backend_gate else "") + ":",
              file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x of baseline",
                  file=sys.stderr)
        return 1

    ok_note = (f", backend gate >= {args.min_speedup:.2f}x on "
               f"{len(gated)} benchmark(s)" if args.backend_gate
               else "")
    print(f"\nbench_compare: OK ({len(shared)} shared benchmarks "
          f"within {args.tolerance:.0%}{ok_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
