#!/usr/bin/env python3
"""Audit the statistical test shard for seed-robustness.

Usage:
    stat_flake_audit.py [--binary build/tests/uncertain_tests]
                        [--seeds 32] [--jobs 4] [--max-failures 2]

Every statistical assertion in the suite runs at a fixed seed, so the
checked-in tests are deterministic: they can only start failing when a
sampler changes. But the alpha they are calibrated at (0.01 for KS and
chi-square) is a statement about the SEED DISTRIBUTION — a test that
happens to pass at its checked-in seed may reject far more than 1% of
re-seeded runs, which means it is silently over-tight (or the sampler
is subtly wrong) and will burn whoever next touches the stream
discipline. This script sweeps UNCERTAIN_TEST_SEED_OFFSET (which
testing::testRng folds into every seed) across many offsets, re-runs
the statistical shard per offset, and reports the per-test rejection
rate.

Budget: with per-test alpha 0.01, a healthy test fails ~1% of offsets.
The audit fails a test when its failure count across the sweep exceeds
--max-failures (default 2 out of 32: P[X >= 3 | Binomial(32, 0.01)]
is ~0.4%, so a flagged test is overwhelmingly likely to be genuinely
over budget rather than unlucky).

The gtest filter is read from tests/CMakeLists.txt
(UNCERTAIN_STATISTICAL_FILTER, joined with the serve shard's
seed-sensitive subset UNCERTAIN_SERVE_STATISTICAL_FILTER — the served
gaussian-chain / speed-posterior KS suites fold the offset into the
server seed) so the audit and the CTest shards cannot drift apart;
--filter overrides it.
"""

import argparse
import concurrent.futures
import os
import pathlib
import re
import subprocess
import sys

FAILED_RE = re.compile(r"^\[\s*FAILED\s*\]\s+(\S+)", re.MULTILINE)


def statistical_filter(repo_root):
    """Read the seed-sensitive filters from tests/CMakeLists.txt.

    The sweep covers the statistical shard plus the statistical subset
    of the serve shard (both are calibrated at a per-test alpha, so
    both carry a rejection-rate budget).
    """
    cmake = repo_root / "tests" / "CMakeLists.txt"
    text = cmake.read_text()
    match = re.search(
        r'set\(UNCERTAIN_STATISTICAL_FILTER\s*\n?\s*"([^"]+)"', text)
    if not match:
        raise SystemExit(
            f"stat_flake_audit: UNCERTAIN_STATISTICAL_FILTER not "
            f"found in {cmake}")
    parts = [match.group(1)]
    serve = re.search(
        r'set\(UNCERTAIN_SERVE_STATISTICAL_FILTER\s*\n?\s*"([^"]+)"',
        text)
    if serve:
        parts.append(serve.group(1))
    return ":".join(parts)


def run_offset(binary, gtest_filter, offset):
    """Run the shard at one seed offset; return failed test names."""
    env = dict(os.environ)
    env["UNCERTAIN_TEST_SEED_OFFSET"] = str(offset)
    proc = subprocess.run(
        [binary, f"--gtest_filter={gtest_filter}",
         "--gtest_brief=1"],
        env=env, capture_output=True, text=True)
    failed = sorted(set(FAILED_RE.findall(proc.stdout)))
    if proc.returncode != 0 and not failed:
        # Crash / non-gtest failure: attribute it to the whole run so
        # it cannot slip through as "no failed tests parsed".
        failed = [f"<shard exited {proc.returncode}>"]
    return offset, failed


def main():
    parser = argparse.ArgumentParser(
        description="Sweep seed offsets over the statistical shard "
                    "and flag over-budget tests.")
    parser.add_argument(
        "--binary", default="build/tests/uncertain_tests",
        help="path to the gtest binary")
    parser.add_argument(
        "--seeds", type=int, default=32,
        help="number of seed offsets to sweep (default 32)")
    parser.add_argument(
        "--jobs", type=int, default=min(4, os.cpu_count() or 1),
        help="parallel shard runs")
    parser.add_argument(
        "--max-failures", type=int, default=2,
        help="per-test failure count above which the audit fails "
             "(default 2)")
    parser.add_argument(
        "--filter", default=None,
        help="override the gtest filter (default: the statistical "
             "shard's filter from tests/CMakeLists.txt)")
    args = parser.parse_args()

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    gtest_filter = args.filter or statistical_filter(repo_root)
    binary = str(pathlib.Path(args.binary))
    if not pathlib.Path(binary).exists():
        raise SystemExit(f"stat_flake_audit: {binary} not found "
                         f"(build the tests first)")

    print(f"stat_flake_audit: {args.seeds} seed offsets, filter:\n"
          f"  {gtest_filter}")
    failures = {}  # test name -> list of offsets it failed at
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        runs = pool.map(
            lambda offset: run_offset(binary, gtest_filter, offset),
            range(args.seeds))
        for offset, failed in runs:
            for name in failed:
                failures.setdefault(name, []).append(offset)
            status = "ok" if not failed else ", ".join(failed)
            print(f"  offset {offset:3d}: {status}")

    if not failures:
        print(f"\nstat_flake_audit: OK — no failures across "
              f"{args.seeds} offsets")
        return 0

    over_budget = []
    print(f"\n{'test':<60} failures  rate")
    for name in sorted(failures, key=lambda n: -len(failures[n])):
        count = len(failures[name])
        rate = count / args.seeds
        marker = ""
        if count > args.max_failures:
            marker = "  <-- OVER BUDGET"
            over_budget.append(name)
        print(f"{name:<60} {count:8d}  {rate:5.1%}{marker}"
              f"  (offsets {failures[name]})")

    if over_budget:
        print(f"\nstat_flake_audit: {len(over_budget)} test(s) over "
              f"the {args.max_failures}/{args.seeds} budget",
              file=sys.stderr)
        return 1
    print(f"\nstat_flake_audit: OK — all failures within the "
          f"{args.max_failures}/{args.seeds} budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
