/**
 * @file
 * GPS-Walking (paper Figure 5 / section 5.1): a fitness app that
 * encourages users to walk faster than 4 mph, run end-to-end on a
 * simulated walk.
 *
 *   ./gps_walking [--seconds N]
 *
 * Prints, per second: the true speed, the naive point-estimate
 * speed, the expected value of the uncertain speed, the
 * prior-improved speed, and what each version of the app would say.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gps/trajectory.hpp"
#include "gps/walking.hpp"

using namespace uncertain;
using namespace uncertain::gps;

namespace {

const char*
adviceName(Advice a)
{
    switch (a) {
      case Advice::GoodJob:
        return "GoodJob";
      case Advice::SpeedUp:
        return "SpeedUp";
      case Advice::None:
        return "-";
    }
    return "?";
}

} // namespace

int
main(int argc, char** argv)
{
    double seconds = 60.0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--seconds") == 0)
            seconds = std::atof(argv[i + 1]);
    }

    Rng rng(42);
    seedGlobalRng(43);

    WalkConfig config;
    config.durationSeconds = seconds;
    auto truth = simulateWalk(config, rng);
    GpsSensor sensor = GpsSensor::phone(2.0);
    auto fixes = observeWalk(truth, sensor, rng);

    std::printf("GPS-Walking: %zu seconds of walking, phone GPS "
                "(eps=2m, correlated errors)\n\n",
                truth.size() - 1);
    std::printf("%6s %10s %10s %12s %12s   %-10s %-10s\n", "t(s)",
                "true", "naive", "E[speed]", "improved", "naive-app",
                "uncertain");

    for (std::size_t i = 1; i < fixes.size(); ++i) {
        double naive = naiveSpeedMph(fixes[i - 1], fixes[i]);
        auto speed = speedFromFixes(fixes[i - 1], fixes[i]);
        inference::ReweightOptions reweightOptions;
        reweightOptions.proposalSamples = 1000;
        reweightOptions.resampleSize = 500;
        auto improved = improveSpeed(speed, reweightOptions);

        std::printf("%6.0f %10.2f %10.2f %12.2f %12.2f   %-10s %-10s\n",
                    fixes[i].timeSeconds, truth[i].speedMph, naive,
                    speed.expectedValue(400),
                    improved.expectedValue(400),
                    adviceName(naiveAdvise(naive)),
                    adviceName(advise(speed)));
    }

    std::printf("\nNote how the naive app admonishes or praises every "
                "second, while the\nuncertain app stays silent when "
                "the evidence is inconclusive, and the\nwalking prior "
                "pulls absurd estimates back into the human range.\n");
    return 0;
}
