/**
 * @file
 * Road snapping (paper section 3.5, Figure 10): combine the GPS
 * posterior with a road-network prior to fix the user's location to
 * nearby roads — unless the GPS evidence to the contrary is very
 * strong.
 *
 *   ./road_snapping
 */

#include <cstdio>

#include "gps/gps_library.hpp"
#include "gps/roads.hpp"

using namespace uncertain;
using namespace uncertain::gps;

int
main()
{
    seedGlobalRng(77);
    Rng rng(78);

    // A small downtown grid: streets every 80 m.
    const GeoCoordinate center{47.6200, -122.3500};
    RoadNetwork grid = RoadNetwork::grid(center, 80.0, 5);
    RoadPrior prior(grid, 6.0);
    std::printf("road network: %zu segments (80 m grid)\n\n",
                grid.segmentCount());

    inference::ReweightOptions options;
    options.proposalSamples = 8000;
    options.resampleSize = 4000;

    // A pedestrian on a north-south street; fixes drift eastward
    // into the block (the nearest cross-streets are 40 m away, so
    // east drift is the distance to the road until mid-block).
    GeoCoordinate streetPoint = destination(center, 0.0, 40.0);
    std::printf("%-28s %14s %14s\n", "scenario", "raw dist (m)",
                "snapped (m)");
    struct Scenario
    {
        const char* label;
        double offsetEast;
        double accuracy;
    };
    for (const Scenario& s :
         {Scenario{"good fix, on the street", 1.0, 5.0},
          Scenario{"fix drifts 12 m off", 12.0, 8.0},
          Scenario{"fix drifts 25 m off", 25.0, 8.0},
          Scenario{"mid-block (40 m, parking?)", 40.0, 8.0}}) {
        GeoCoordinate fixCenter =
            destination(streetPoint, M_PI / 2.0, s.offsetEast);
        auto raw = getLocation({fixCenter, s.accuracy, 0.0});
        auto snapped = snapToRoads(raw, prior, options, rng);

        auto meanDistance = [&](const Uncertain<GeoCoordinate>& u) {
            double total = 0.0;
            for (const auto& p : u.takeSamples(1500, rng))
                total += grid.distanceToNearestRoad(p);
            return total / 1500.0;
        };
        std::printf("%-28s %14.2f %14.2f\n", s.label,
                    meanDistance(raw), meanDistance(snapped));
    }

    std::printf("\nThe posterior sticks to the street until the fix "
                "is genuinely mid-block;\nthen the prior's uniform "
                "floor lets the GPS evidence win. Composable with\n"
                "other priors via inference::CompositePrior.\n");
    return 0;
}
