/**
 * @file
 * SensorLife (paper section 5.2): Conway's Game of Life played
 * through noisy sensors, comparing the naive, uncertain, and
 * Bayesian implementations live.
 *
 *   ./sensor_life [--sigma S] [--generations N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "life/variants.hpp"

using namespace uncertain;
using namespace uncertain::life;

int
main(int argc, char** argv)
{
    double sigma = 0.2;
    std::size_t generations = 8;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--sigma") == 0)
            sigma = std::atof(argv[i + 1]);
        if (std::strcmp(argv[i], "--generations") == 0)
            generations = static_cast<std::size_t>(
                std::atoi(argv[i + 1]));
    }

    Rng rng(7);
    Board initial(16, 16);
    initial.randomize(rng, 0.35);

    std::printf("Game of Life through sensors with N(0, %.2f) noise, "
                "%zu generations\n\n",
                sigma, generations);
    std::printf("Initial board:\n%s\n", initial.render().c_str());

    core::ConditionalOptions options;
    options.sprt.batchSize = 8;
    options.sprt.maxSamples = 160;

    NaiveLife naive(sigma);
    SensorLife sensor(sigma, options);
    BayesLife bayes(sigma, options);
    const LifeVariant* variants[] = {&naive, &sensor, &bayes};

    std::printf("%-12s %14s %18s\n", "variant", "error rate",
                "samples/update");
    for (const LifeVariant* variant : variants) {
        Rng variantRng(99); // same noise realization for fairness
        RunStats stats =
            runNoisyGame(initial, *variant, generations, variantRng);
        std::printf("%-12s %13.2f%% %18.1f\n",
                    variant->name().c_str(), 100.0 * stats.errorRate(),
                    stats.samplesPerUpdate());
    }

    std::printf("\nBoards after %zu noisy generations (vs. exact):\n",
                generations);
    Board exact = initial;
    for (std::size_t g = 0; g < generations; ++g)
        exact = exact.stepExact();

    Board noisy = initial;
    Rng runRng(99);
    for (std::size_t g = 0; g < generations; ++g)
        stepNoisy(noisy, bayes, runRng);

    std::printf("exact:\n%s\nBayesLife:\n%s", exact.render().c_str(),
                noisy.render().c_str());
    return 0;
}
