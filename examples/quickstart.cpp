/**
 * @file
 * Quickstart: the Uncertain<T> API in five minutes.
 *
 *   ./quickstart
 *
 * Walks through the paper's core ideas: leaves are distributions,
 * operators build a Bayesian network, conditionals evaluate
 * evidence, and E() projects back to the base type.
 */

#include <cstdio>
#include <memory>

#include "core/core.hpp"
#include "random/gaussian.hpp"
#include "random/uniform.hpp"

using namespace uncertain;

int
main()
{
    seedGlobalRng(2014);

    // 1. Expert developers expose distributions as sampling
    //    functions; a Gaussian here stands in for any estimate.
    Uncertain<double> sensor = core::fromDistribution(
        std::make_shared<random::Gaussian>(4.5, 1.0));
    std::printf("sensor ~ Gaussian(4.5, 1.0)\n");
    std::printf("one sample (NOT the value!): %.3f\n", sensor.sample());

    // 2. Computing with the value propagates its uncertainty: these
    //    operators build a Bayesian network, they do not sample.
    Uncertain<double> calibrated = (sensor - 0.5) * 1.2;
    std::printf("calibrated = (sensor - 0.5) * 1.2, graph of %zu nodes\n",
                calibrated.graphSize());

    // 3. The evaluation operator E projects back to double.
    std::printf("E[calibrated] = %.3f (analytically 4.8)\n",
                calibrated.expectedValue(20000));

    // 4. Conditionals ask for EVIDENCE. The implicit form asks
    //    "more likely than not":
    if (calibrated > 4.0)
        std::printf("more likely than not, calibrated > 4.0\n");

    // ...and the explicit form demands stronger evidence, trading
    // false positives for false negatives:
    if ((calibrated > 4.0).pr(0.95))
        std::printf("95%% evidence that calibrated > 4.0\n");
    else
        std::printf("NOT 95%% sure that calibrated > 4.0 "
                    "(the distribution is too wide)\n");

    // 5. Shared subexpressions are handled correctly: x - x is
    //    exactly zero, because both operands are the same variable.
    std::printf("E[sensor - sensor] = %.17g (exactly 0)\n",
                (sensor - sensor).expectedValue(100));

    // 6. Ternary logic: with overlapping distributions, neither
    //    branch of an if/else-if chain may fire.
    Uncertain<double> a = core::fromDistribution(
        std::make_shared<random::Uniform>(0.0, 1.0));
    Uncertain<double> b = core::fromDistribution(
        std::make_shared<random::Uniform>(0.001, 1.001));
    if (a < b)
        std::printf("evidence that a < b\n");
    else if (a >= b)
        std::printf("evidence that a >= b\n");
    else
        std::printf("inconclusive: a and b overlap too much -- "
                    "exactly the paper's ternary logic\n");

    // 7. The network can be inspected as Graphviz DOT.
    std::printf("\nDOT of the calibrated network:\n%s",
                core::toDot(calibrated).c_str());
    return 0;
}
