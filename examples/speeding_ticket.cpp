/**
 * @file
 * The speeding-ticket thought experiment of paper section 2 and
 * Figure 4: issuing tickets from GPS-measured speed at a 60 mph
 * limit. Shows how the explicit conditional operator controls false
 * accusations.
 *
 *   ./speeding_ticket
 */

#include <cstdio>

#include <string>

#include "gps/sensor.hpp"
#include "gps/walking.hpp"

using namespace uncertain;
using namespace uncertain::gps;

namespace {

/**
 * Build the uncertain speed for a car truly travelling
 * @p trueSpeedMph, measured by two fixes @p epsilon apart in
 * accuracy, 1 s apart in time.
 */
Uncertain<double>
measuredSpeed(double trueSpeedMph, double epsilon, Rng& rng)
{
    GeoCoordinate start{47.62, -122.35};
    double metersPerSecond = trueSpeedMph / kMpsToMph;
    GeoCoordinate end = destination(start, 0.5, metersPerSecond);

    GpsSensor sensor(epsilon);
    GpsFix f1 = sensor.read(start, 0.0, rng);
    GpsFix f2 = sensor.read(end, 1.0, rng);
    return speedFromFixes(f1, f2);
}

} // namespace

int
main()
{
    Rng rng(60);
    seedGlobalRng(61);
    const double limit = 60.0;

    std::printf("Speed limit %.0f mph, GPS accuracy 4 m.\n\n", limit);
    std::printf("%-12s %-22s %-22s %-22s\n", "true speed",
                "naive (one readout)", "implicit Pr > 0.5",
                "explicit Pr > 0.99");

    for (double trueSpeed : {50.0, 55.0, 57.0, 59.0, 61.0, 63.0,
                             65.0, 70.0}) {
        int naiveTickets = 0;
        int implicitTickets = 0;
        int strictTickets = 0;
        const int trials = 40;
        for (int t = 0; t < trials; ++t) {
            auto speed = measuredSpeed(trueSpeed, 4.0, rng);
            // The naive officer reads the point estimate once.
            naiveTickets += speed.sample(rng) > limit ? 1 : 0;
            implicitTickets += (speed > limit).pr(0.5) ? 1 : 0;
            strictTickets += (speed > limit).pr(0.99) ? 1 : 0;
        }
        std::printf("%-12.0f %-22s %-22s %-22s\n", trueSpeed,
                    (std::to_string(naiveTickets) + "/"
                     + std::to_string(trials))
                        .c_str(),
                    (std::to_string(implicitTickets) + "/"
                     + std::to_string(trials))
                        .c_str(),
                    (std::to_string(strictTickets) + "/"
                     + std::to_string(trials))
                        .c_str());
    }

    std::printf("\nAt 57 mph the paper predicts ~32%% naive false "
                "tickets from random\nerror alone; demanding 99%% "
                "evidence all but eliminates them while\nstill "
                "ticketing flagrant speeders.\n");
    return 0;
}
