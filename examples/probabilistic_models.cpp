/**
 * @file
 * The probabilistic-programming side of the repository: one
 * generative model run through all three inference engines —
 * rejection sampling, likelihood weighting, and trace MH — and then
 * bridged into Uncertain<T> for application-style consumption.
 *
 *   ./probabilistic_models
 */

#include <cstdio>

#include "core/core.hpp"
#include "inference/conjugate.hpp"
#include "prob/mcmc.hpp"
#include "prob/model.hpp"
#include "random/gaussian.hpp"
#include "stats/summary.hpp"

using namespace uncertain;

namespace {

/**
 * A thermostat story: the true room temperature is latent; a cheap
 * sensor read 24.6 C with known 1.5 C noise. Should the AC engage
 * (threshold 24 C)?
 */
double
roomModel(prob::Sampler& s)
{
    double temperature = s.gaussian(21.0, 3.0); // seasonal prior
    s.factor(random::Gaussian(temperature, 1.5).logPdf(24.6));
    return temperature;
}

} // namespace

int
main()
{
    Rng rng(2718);
    seedGlobalRng(2719);

    random::Gaussian exact = inference::gaussianPosterior(
        random::Gaussian(21.0, 3.0), 24.6, 1.5);
    std::printf("exact posterior: N(%.3f, %.3f)\n\n", exact.mu(),
                exact.sigma());

    // 1. Likelihood weighting: every run contributes, weighted.
    auto weighted = prob::likelihoodWeightedQuery(roomModel, 20000,
                                                  rng);
    std::printf("likelihood weighting: mean %.3f  (ESS %.0f of %zu "
                "runs)\n",
                weighted.mean(), weighted.effectiveSampleSize(),
                weighted.simulations);

    // 2. Trace MH: a chain over the latent.
    prob::McmcOptions mcmcOptions;
    mcmcOptions.burnIn = 2000;
    mcmcOptions.thinning = 10;
    mcmcOptions.posteriorSamples = 2000;
    auto chain = prob::mcmcQuery(roomModel, mcmcOptions, rng);
    std::printf("trace MH:             mean %.3f  (accept %.2f, %zu "
                "executions)\n",
                stats::mean(chain.samples), chain.acceptanceRate,
                chain.modelExecutions);

    // 3. Rejection sampling cannot handle soft evidence directly —
    //    that is what the alarm model (hard evidence) is for.
    auto alarm = prob::rejectionQuery(prob::alarmModel, 500, rng);
    std::printf("rejection (alarm):    mean %.3f  (accept rate "
                "%.4f%%)\n\n",
                alarm.mean(), 100.0 * alarm.acceptanceRate());

    // 4. Bridge into the uncertain type: application code consumes
    //    the posterior with operators and evidence conditionals.
    auto temperature = Uncertain<double>::fromSampler(
        [pool = std::make_shared<std::vector<double>>(
             chain.samples)](Rng& r) {
            return (*pool)[static_cast<std::size_t>(
                r.nextBelow(pool->size()))];
        },
        "room-temperature");

    std::printf("application view: %s\n",
                core::describe(temperature).toString().c_str());
    if ((temperature > 24.0).pr(0.8))
        std::printf("=> engage the AC (80%% evidence it is above "
                    "24 C)\n");
    else if (temperature > 24.0)
        std::printf("=> probably warm, but not 80%%-sure: wait\n");
    else
        std::printf("=> more likely below 24 C: stay off\n");
    return 0;
}
