/**
 * @file
 * Parakeet (paper section 5.3): approximate the Sobel operator with
 * a Bayesian neural network and detect edges with evidence
 * conditionals instead of point estimates.
 *
 *   ./parakeet_edges [--train N] [--eval N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "nn/parakeet.hpp"
#include "nn/sobel.hpp"
#include "stats/precision_recall.hpp"

using namespace uncertain;
using namespace uncertain::nn;

int
main(int argc, char** argv)
{
    std::size_t trainCount = 2000;
    std::size_t evalCount = 300;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--train") == 0)
            trainCount =
                static_cast<std::size_t>(std::atoi(argv[i + 1]));
        if (std::strcmp(argv[i], "--eval") == 0)
            evalCount =
                static_cast<std::size_t>(std::atoi(argv[i + 1]));
    }

    Rng rng(2023);
    std::printf("Training Parakeet on %zu synthetic Sobel patches "
                "(9-8-1 network)...\n",
                trainCount);
    Dataset train = makeSobelDataset(trainCount, rng);

    ParakeetOptions options;
    options.sgd.epochs = 150;
    options.hmc.burnIn = 200;
    options.hmc.posteriorSamples = 64;
    options.hmc.thinning = 5;
    options.hmcDataLimit = 1000;
    Parakeet model = Parakeet::train(train, options, rng);
    std::printf("Parrot (point estimate) training RMS error: %.3f\n",
                std::sqrt(model.parrotTrainingMse()));
    std::printf("HMC acceptance rate: %.2f, posterior pool: %zu "
                "networks\n\n",
                model.hmcAcceptanceRate(), model.poolSize());

    Dataset eval = makeSobelDataset(evalCount, rng);
    core::ConditionalOptions conditional;
    conditional.sprt.maxSamples = 200;

    // Parrot: locked into one precision/recall point.
    stats::ConfusionMatrix parrot;
    for (std::size_t i = 0; i < eval.size(); ++i) {
        bool truth = eval.targets[i] > kEdgeThreshold;
        parrot.add(truth,
                   model.parrotPredict(eval.inputs[i])
                       > kEdgeThreshold);
    }
    std::printf("Parrot point estimate:  precision %.2f  recall %.2f\n",
                parrot.precision(), parrot.recall());

    // Parakeet: developers pick their own balance via alpha.
    for (double alpha : {0.2, 0.5, 0.8}) {
        stats::ConfusionMatrix matrix;
        for (std::size_t i = 0; i < eval.size(); ++i) {
            bool truth = eval.targets[i] > kEdgeThreshold;
            auto evidence =
                model.predict(eval.inputs[i]) > kEdgeThreshold;
            matrix.add(truth, evidence.pr(alpha, conditional, rng));
        }
        std::printf("Parakeet Pr(%.1f):      precision %.2f  recall "
                    "%.2f\n",
                    alpha, matrix.precision(), matrix.recall());
    }

    // One concrete pixel: the full posterior predictive view.
    Patch step{0.2, 0.25, 0.3, 0.2, 0.25, 0.3, 0.2, 0.25, 0.3};
    std::vector<double> input(step.begin(), step.end());
    auto ppd = model.predict(input);
    std::printf("\nWeak-gradient pixel: truth s(p) = %.3f, Parrot says "
                "%.3f,\nPr[s(p) > 0.1] = %.2f -- the evidence view "
                "exposes what the point\nestimate hides.\n",
                sobel(step), model.parrotPredict(input),
                (ppd > kEdgeThreshold).probability(2000, rng));
    return 0;
}
